//! Basis kernels for the revised simplex: a sparse LU backend for large
//! bases and a dense explicit-inverse backend for small ones.
//!
//! The simplex keeps its basis `B` (one column per constraint row) as a
//! [`Basis`]. Above [`DENSE_MAX`] rows that is a sparse LU factorization
//! refreshed periodically, plus a chain of **product-form eta updates**
//! applied at every pivot in between; at or below it, a dense explicit
//! inverse updated in place (see [`DENSE_MAX`] for the break-even). The
//! sparse solve kernels work on dense scratch vectors but skip zero
//! regions, so their cost is `O(nnz(L) + nnz(U) + nnz(etas))` — on the
//! paper's LP2 instances (a handful of nonzeros per column) that is
//! orders of magnitude below the dense `O(m²)` FTRAN/BTRAN they replace
//! at scale.
//!
//! * **Factorization** ([`SparseLu::factorize`]) is left-looking
//!   Gilbert–Peierls style: columns are eliminated in a Markowitz-flavoured
//!   static order (ascending column count), and within each column the
//!   pivot row is chosen among entries within a relative threshold of the
//!   column maximum ([`PIVOT_REL_TOL`]) as the one with the fewest basis
//!   nonzeros — sparsity-first pivoting bounded away from instability.
//! * **FTRAN** solves `B x = b` (row space → basis-position space),
//!   **BTRAN** solves `Bᵀ y = c` (position space → row space); both exploit
//!   sparse right-hand sides (the entering column, `e_r`, a sparse `c_B`)
//!   by short-circuiting every elimination step whose driving scalar is
//!   zero.
//! * **Updates** ([`Basis::update`]) append one sparse eta per pivot
//!   (the product form of the inverse, the classic alternative to
//!   Forrest–Tomlin with the same per-pivot sparsity); the chain is
//!   capped by [`Basis::should_refactorize`] so error and fill cannot
//!   accumulate unboundedly.
//!
//! Factors and etas live in flat CSR-style arrays (one allocation each,
//! `memcpy`-cheap to clone), which is what lets a warm-start snapshot
//! carry its factorization instead of re-factorizing on every reuse.
//!
//! The kernels are deterministic (no randomized orderings) and are
//! cross-checked against a dense Gauss–Jordan inverse by
//! `milp/tests/proptest_lu.rs`, including across long update chains and
//! forced refactorization boundaries.

/// Relative threshold for row pivoting inside a column: rows within this
/// factor of the column's largest magnitude are eligible, and the sparsest
/// eligible row wins. Larger values favour stability, smaller values
/// sparsity; 0.1 is the textbook compromise. This is the *initial* value;
/// [`Basis::tighten_pivot_tol`] raises it (towards partial pivoting) when
/// the simplex's accuracy monitor flags an unacceptable residual.
pub const PIVOT_REL_TOL: f64 = crate::tol::LU_PIVOT_REL;

/// Relative magnitude below which a pivot candidate is treated as zero
/// (the basis is declared singular when no column entry survives). Applied
/// relative to the largest magnitude in the basis columns, so singularity
/// detection is invariant under uniform rescaling of the basis.
pub const SINGULAR_TOL: f64 = crate::tol::LU_SINGULAR_REL;

/// Eta updates accepted before [`Basis::should_refactorize`] trips. Each
/// eta adds one sparse column to every subsequent FTRAN/BTRAN, so the cap
/// trades refactorization cost against solve cost; it also bounds the
/// round-off accumulated by the product form.
pub const MAX_ETAS: usize = 128;

/// The factorization (or an update) hit a numerically singular pivot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Singular;

impl std::fmt::Display for Singular {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "numerically singular basis")
    }
}

/// Sparse LU factorization of a basis matrix `B`: `B = Pᵣ⁻¹ L U P𝚌⁻¹` with
/// unit-lower-triangular `L` and upper-triangular `U`, both stored
/// column-wise (flat arrays) in elimination-step order.
#[derive(Debug, Clone)]
pub struct SparseLu {
    m: usize,
    /// Pivot row (original row index) of each elimination step.
    prow: Vec<u32>,
    /// Basis position whose column was eliminated at each step.
    pcol: Vec<u32>,
    /// `L` column extents: step `k` owns `lrow/lval[lptr[k]..lptr[k+1]]`,
    /// `(original row, multiplier)` over rows pivoted at later steps.
    lptr: Vec<u32>,
    lrow: Vec<u32>,
    lval: Vec<f64>,
    /// `U` column extents: step `k` owns `ustep/uval[uptr[k]..uptr[k+1]]`,
    /// `(earlier step j, u_jk)`.
    uptr: Vec<u32>,
    ustep: Vec<u32>,
    uval: Vec<f64>,
    /// `U` diagonal per step (the accepted pivots).
    udiag: Vec<f64>,
}

/// Reusable factorization workspace: every buffer
/// [`SparseLu::factorize_with`] needs, kept by the caller so repeated
/// refactorizations allocate nothing. (The one-shot
/// [`SparseLu::factorize`] creates a fresh one per call.)
#[derive(Debug, Default)]
pub struct FactorScratch {
    row_count: Vec<u32>,
    order: Vec<u32>,
    buckets: Vec<u32>,
    row_step: Vec<u32>,
    x: Vec<f64>,
    in_pattern: Vec<bool>,
    touched: Vec<u32>,
    reach: Vec<u32>,
    reached: Vec<bool>,
    dfs: Vec<u32>,
}

impl SparseLu {
    /// An empty factorization (dimension 0), used as the storage donor
    /// for the first [`SparseLu::factorize_with`] call.
    pub fn empty() -> SparseLu {
        SparseLu {
            m: 0,
            prow: Vec::new(),
            pcol: Vec::new(),
            lptr: Vec::new(),
            lrow: Vec::new(),
            lval: Vec::new(),
            uptr: Vec::new(),
            ustep: Vec::new(),
            uval: Vec::new(),
            udiag: Vec::new(),
        }
    }

    /// Factorizes the basis whose column at position `p` is
    /// `basis_cols[p]`, a sparse `(row, coefficient)` list with ascending
    /// rows. Returns [`Singular`] when elimination breaks down.
    pub fn factorize(m: usize, basis_cols: &[&[(u32, f64)]]) -> Result<SparseLu, Singular> {
        SparseLu::factorize_with(
            m,
            basis_cols,
            &mut FactorScratch::default(),
            SparseLu::empty(),
        )
    }

    /// [`SparseLu::factorize`] with caller-owned workspace and a storage
    /// donor (typically the superseded factorization), so the steady-state
    /// refactorization of a running simplex allocates nothing.
    pub fn factorize_with(
        m: usize,
        basis_cols: &[&[(u32, f64)]],
        scratch: &mut FactorScratch,
        reuse: SparseLu,
    ) -> Result<SparseLu, Singular> {
        SparseLu::factorize_tol(m, basis_cols, scratch, reuse, PIVOT_REL_TOL)
    }

    /// [`SparseLu::factorize_with`] with an explicit Markowitz-style
    /// relative pivot threshold (the fraction of the column maximum a
    /// candidate must reach to be eligible). [`Basis`] threads its
    /// adaptive threshold through here on every refactorization.
    fn factorize_tol(
        m: usize,
        basis_cols: &[&[(u32, f64)]],
        scratch: &mut FactorScratch,
        reuse: SparseLu,
        pivot_rel_tol: f64,
    ) -> Result<SparseLu, Singular> {
        assert_eq!(basis_cols.len(), m, "basis must have one column per row");
        // Static Markowitz data: nonzeros per row across the basis.
        let row_count = &mut scratch.row_count;
        row_count.clear();
        row_count.resize(m, 0);
        let mut max_len = 0usize;
        let mut bmax = 0.0f64;
        for col in basis_cols {
            max_len = max_len.max(col.len());
            for &(r, a) in *col {
                row_count[r as usize] += 1;
                bmax = bmax.max(a.abs());
            }
        }
        // Scale-relative singularity threshold: invariant under uniform
        // rescaling of the basis columns.
        let singular = SINGULAR_TOL * bmax.max(1.0);
        // Markowitz-flavoured column order: sparsest columns first, ties
        // by position — a counting sort (lengths are small) keeps this
        // O(m) and deterministic.
        let buckets = &mut scratch.buckets;
        buckets.clear();
        buckets.resize(max_len + 2, 0);
        for col in basis_cols {
            buckets[col.len() + 1] += 1;
        }
        for b in 1..buckets.len() {
            buckets[b] += buckets[b - 1];
        }
        let order = &mut scratch.order;
        order.clear();
        order.resize(m, 0);
        for (p, col) in basis_cols.iter().enumerate() {
            let slot = &mut buckets[col.len()];
            order[*slot as usize] = p as u32;
            *slot += 1;
        }

        let mut lu = reuse;
        lu.m = m;
        lu.prow.clear();
        lu.pcol.clear();
        lu.lptr.clear();
        lu.lrow.clear();
        lu.lval.clear();
        lu.uptr.clear();
        lu.ustep.clear();
        lu.uval.clear();
        lu.udiag.clear();
        lu.lptr.push(0);
        lu.uptr.push(0);
        // Step at which each original row was pivoted (u32::MAX = not yet).
        let row_step = &mut scratch.row_step;
        row_step.clear();
        row_step.resize(m, u32::MAX);
        // Dense scratch for the current column plus its touched pattern
        // (`in_pattern` guards against duplicate pattern entries when a
        // value cancels to exactly zero and is touched again).
        scratch.x.clear();
        scratch.x.resize(m, 0.0);
        let x = &mut scratch.x;
        scratch.in_pattern.clear();
        scratch.in_pattern.resize(m, false);
        let in_pattern = &mut scratch.in_pattern;
        let touched = &mut scratch.touched;
        touched.clear();
        // Gilbert–Peierls symbolic scratch: which elimination steps the
        // current column reaches, discovered by DFS over the L pattern.
        let reach = &mut scratch.reach;
        reach.clear();
        scratch.reached.clear();
        scratch.reached.resize(m, false);
        let reached = &mut scratch.reached;
        let dfs = &mut scratch.dfs;
        dfs.clear();

        for &pos in order.iter() {
            let k = lu.prow.len();
            // Scatter the column.
            for &(r, a) in basis_cols[pos as usize] {
                if !in_pattern[r as usize] {
                    in_pattern[r as usize] = true;
                    touched.push(r);
                }
                x[r as usize] += a;
            }
            // Symbolic phase (Gilbert–Peierls): the steps whose pivot rows
            // this column reaches, via DFS through the L columns — cost is
            // proportional to the reach, not to the number of prior steps.
            reach.clear();
            for &(r, _) in basis_cols[pos as usize] {
                let j0 = row_step[r as usize];
                if j0 == u32::MAX || reached[j0 as usize] {
                    continue;
                }
                dfs.push(j0);
                reached[j0 as usize] = true;
                while let Some(j) = dfs.pop() {
                    reach.push(j);
                    for e in lu.lptr[j as usize] as usize..lu.lptr[j as usize + 1] as usize {
                        let j2 = row_step[lu.lrow[e] as usize];
                        if j2 != u32::MAX && !reached[j2 as usize] {
                            reached[j2 as usize] = true;
                            dfs.push(j2);
                        }
                    }
                }
            }
            // The dependency order among reached steps is their numeric
            // order (step j is only updated by steps j' < j).
            reach.sort_unstable();
            // Numeric phase: left-looking solve over the reach only.
            for &j32 in reach.iter() {
                let j = j32 as usize;
                reached[j] = false;
                let t = x[lu.prow[j] as usize];
                if t == 0.0 {
                    continue;
                }
                for e in lu.lptr[j] as usize..lu.lptr[j + 1] as usize {
                    let i = lu.lrow[e] as usize;
                    if !in_pattern[i] {
                        in_pattern[i] = true;
                        touched.push(i as u32);
                    }
                    x[i] -= lu.lval[e] * t;
                }
            }
            // Pivot candidates: the touched rows not yet pivoted.
            let mut vmax = 0.0f64;
            for &r in touched.iter() {
                let v = x[r as usize];
                if v != 0.0 && row_step[r as usize] == u32::MAX && v.abs() > vmax {
                    vmax = v.abs();
                }
            }
            if vmax < singular {
                return Err(Singular);
            }
            // Threshold pivoting: sparsest eligible row, ties by magnitude
            // then row index (all deterministic).
            let mut best: Option<(u32, f64, u32)> = None; // (row nnz, |v|, row)
            for &r in touched.iter() {
                let v = x[r as usize];
                if v == 0.0 || row_step[r as usize] != u32::MAX {
                    continue;
                }
                if v.abs() + singular < pivot_rel_tol * vmax {
                    continue;
                }
                let key = (row_count[r as usize], v.abs(), r);
                let better = match best {
                    None => true,
                    Some((bc, bv, br)) => {
                        key.0 < bc || (key.0 == bc && (key.1 > bv || (key.1 == bv && r < br)))
                    }
                };
                if better {
                    best = Some(key);
                }
            }
            let (_, _, pr) = best.ok_or(Singular)?;
            let piv = x[pr as usize];
            // Entry order within an L/U column is irrelevant to the solve
            // kernels (scatter updates and dot products); `touched` is
            // filled deterministically, so the layout is reproducible
            // without a sort.
            for &r in touched.iter() {
                let v = x[r as usize];
                if v == 0.0 {
                    continue;
                }
                let step = row_step[r as usize];
                if step != u32::MAX {
                    lu.ustep.push(step);
                    lu.uval.push(v);
                } else if r != pr {
                    lu.lrow.push(r);
                    lu.lval.push(v / piv);
                }
            }
            // Reset scratch.
            for &r in touched.iter() {
                x[r as usize] = 0.0;
                in_pattern[r as usize] = false;
            }
            touched.clear();

            row_step[pr as usize] = k as u32;
            lu.prow.push(pr);
            lu.pcol.push(pos);
            lu.lptr.push(lu.lrow.len() as u32);
            lu.uptr.push(lu.ustep.len() as u32);
            lu.udiag.push(piv);
        }
        Ok(lu)
    }

    /// Solves `B x = b` in place: `x` enters holding `b` (indexed by
    /// constraint row) and leaves holding `B⁻¹ b` (indexed by basis
    /// position). Zero regions of the triangular solves are skipped, so a
    /// sparse `b` costs only the nonzeros it actually reaches.
    pub fn ftran(&self, x: &mut [f64], scratch: &mut Vec<f64>) {
        let m = self.m;
        debug_assert_eq!(x.len(), m);
        // L solve (forward, in row space).
        for k in 0..m {
            let t = x[self.prow[k] as usize];
            if t == 0.0 {
                continue;
            }
            for e in self.lptr[k] as usize..self.lptr[k + 1] as usize {
                x[self.lrow[e] as usize] -= self.lval[e] * t;
            }
        }
        // U solve (backward, in step space carried on the pivot rows).
        for k in (0..m).rev() {
            let t = x[self.prow[k] as usize];
            if t == 0.0 {
                continue;
            }
            let t = t / self.udiag[k];
            x[self.prow[k] as usize] = t;
            for e in self.uptr[k] as usize..self.uptr[k + 1] as usize {
                x[self.prow[self.ustep[e] as usize] as usize] -= self.uval[e] * t;
            }
        }
        // Permute step values to basis positions.
        scratch.clear();
        scratch.resize(m, 0.0);
        for k in 0..m {
            let v = x[self.prow[k] as usize];
            if v != 0.0 {
                scratch[self.pcol[k] as usize] = v;
            }
        }
        x.copy_from_slice(scratch);
    }

    /// Solves `Bᵀ y = c` in place: `x` enters holding `c` (indexed by
    /// basis position) and leaves holding `c' B⁻¹` (indexed by constraint
    /// row) — the dual / pivot-row kernel.
    pub fn btran(&self, x: &mut [f64], scratch: &mut Vec<f64>) {
        let m = self.m;
        debug_assert_eq!(x.len(), m);
        // Uᵀ solve (forward, step space): z_k = (c_k - Σ_{j<k} u_jk z_j) / u_kk.
        scratch.clear();
        scratch.resize(m, 0.0);
        let z = scratch;
        for k in 0..m {
            let mut acc = x[self.pcol[k] as usize];
            for e in self.uptr[k] as usize..self.uptr[k + 1] as usize {
                let zj = z[self.ustep[e] as usize];
                if zj != 0.0 {
                    acc -= self.uval[e] * zj;
                }
            }
            if acc != 0.0 {
                z[k] = acc / self.udiag[k];
            }
        }
        // Lᵀ solve (backward): place step values on pivot rows, then
        // eliminate in reverse step order.
        for v in x.iter_mut() {
            *v = 0.0;
        }
        for k in 0..m {
            x[self.prow[k] as usize] = z[k];
        }
        for k in (0..m).rev() {
            let mut acc = x[self.prow[k] as usize];
            for e in self.lptr[k] as usize..self.lptr[k + 1] as usize {
                let yi = x[self.lrow[e] as usize];
                if yi != 0.0 {
                    acc -= self.lval[e] * yi;
                }
            }
            x[self.prow[k] as usize] = acc;
        }
    }

    /// Nonzeros in the triangular factors including the diagonal (fill-in
    /// diagnostic).
    pub fn nnz(&self) -> usize {
        self.lval.len() + self.uval.len() + self.m
    }
}

/// Bases at or below this row count keep a dense explicit inverse. For
/// tiny bases the dense kernels win outright: an in-place eta update is a
/// few thousand contiguous flops, FTRAN/BTRAN are single `O(m·nnz)`
/// sweeps with no permutation bookkeeping, and the whole inverse is a few
/// cache lines — the sparse machinery's pointer-chasing fixed costs only
/// amortize once `m` clears a couple of hundred rows (measured break-even
/// on the paper's LP2 family: the 10-router / 133-row instances run ~2×
/// faster dense, the 999-row Figure 8 relaxation ~60× faster sparse).
pub const DENSE_MAX: usize = 200;

/// Dense explicit inverse backend for small bases: column-major `m × m`
/// `B⁻¹` (entry `(position i, row c)` at `binv[c·m + i]`), updated in
/// place by standard product-form pivoting.
#[derive(Debug, Clone)]
struct DenseInv {
    m: usize,
    binv: Vec<f64>,
}

impl DenseInv {
    /// Builds the dense inverse by Gauss–Jordan with partial pivoting.
    fn factorize(m: usize, basis_cols: &[&[(u32, f64)]]) -> Result<DenseInv, Singular> {
        let mut b = vec![0.0f64; m * m];
        let mut bmax = 0.0f64;
        for (pos, col) in basis_cols.iter().enumerate() {
            for &(row, a) in *col {
                b[pos * m + row as usize] = a;
                bmax = bmax.max(a.abs());
            }
        }
        let singular = SINGULAR_TOL * bmax.max(1.0);
        let mut inv = vec![0.0f64; m * m];
        for i in 0..m {
            inv[i * m + i] = 1.0;
        }
        for piv in 0..m {
            let (mut best_r, mut best_v) = (piv, 0.0f64);
            for r in piv..m {
                let v = b[piv * m + r].abs();
                if v > best_v {
                    best_v = v;
                    best_r = r;
                }
            }
            if best_v < singular {
                return Err(Singular);
            }
            if best_r != piv {
                for c in 0..m {
                    b.swap(c * m + piv, c * m + best_r);
                    inv.swap(c * m + piv, c * m + best_r);
                }
            }
            let d = b[piv * m + piv];
            for c in 0..m {
                b[c * m + piv] /= d;
                inv[c * m + piv] /= d;
            }
            for r in 0..m {
                if r == piv {
                    continue;
                }
                let f = b[piv * m + r];
                if f == 0.0 {
                    continue;
                }
                for c in 0..m {
                    b[c * m + r] -= f * b[c * m + piv];
                    inv[c * m + r] -= f * inv[c * m + piv];
                }
            }
        }
        Ok(DenseInv { m, binv: inv })
    }

    /// `x ← B⁻¹ x`: accumulate the inverse's columns for the nonzero rows.
    fn ftran(&self, x: &mut [f64], scratch: &mut Vec<f64>) {
        let m = self.m;
        scratch.clear();
        scratch.resize(m, 0.0);
        for (row, &v) in x.iter().enumerate() {
            if v != 0.0 {
                let col = &self.binv[row * m..(row + 1) * m];
                for (acc, &ci) in scratch.iter_mut().zip(col) {
                    *acc += v * ci;
                }
            }
        }
        x.copy_from_slice(scratch);
    }

    /// `x ← x' B⁻¹`: one dot per row over the nonzero positions.
    fn btran(&self, x: &mut [f64], scratch: &mut Vec<f64>) {
        let m = self.m;
        scratch.clear();
        scratch.resize(m, 0.0);
        for (i, &v) in x.iter().enumerate() {
            if v != 0.0 {
                for (c, acc) in scratch.iter_mut().enumerate() {
                    *acc += v * self.binv[c * m + i];
                }
            }
        }
        x.copy_from_slice(scratch);
    }

    /// In-place product-form pivot on position `r` with FTRAN column `w`.
    fn update(&mut self, r: usize, w: &[f64]) -> Result<(), Singular> {
        let m = self.m;
        let pivot = w[r];
        if pivot.abs() < SINGULAR_TOL {
            return Err(Singular);
        }
        for c in 0..m {
            let col = &mut self.binv[c * m..(c + 1) * m];
            let pr = col[r];
            if pr == 0.0 {
                continue;
            }
            let f = pr / pivot;
            for (i, (ci, &wi)) in col.iter_mut().zip(w).enumerate() {
                if i != r {
                    *ci -= wi * f;
                }
            }
            col[r] = f;
        }
        Ok(())
    }
}

/// Sparse backend state: the LU factors plus the product-form eta chain
/// accumulated since the last refactorization.
#[derive(Debug, Clone)]
struct SparseBasis {
    lu: SparseLu,
    /// Pivot position of each eta.
    eta_r: Vec<u32>,
    /// Inverse pivot (`1 / w_r`) of each eta.
    eta_diag: Vec<f64>,
    /// Eta column extents into `eta_idx`/`eta_val` (`(position,
    /// -w_i/w_r)` pairs for `i ≠ r`).
    eta_ptr: Vec<u32>,
    eta_idx: Vec<u32>,
    eta_val: Vec<f64>,
}

/// The two basis backends (see [`DENSE_MAX`]).
#[derive(Debug, Clone)]
enum Repr {
    Dense {
        inv: DenseInv,
        /// In-place updates applied since the last factorization (bounds
        /// round-off accumulation, mirroring the eta cap).
        updates: usize,
    },
    Sparse(Box<SparseBasis>),
}

/// A simplex basis, behind a size-dispatched backend: small bases keep a
/// dense explicit inverse, large ones a sparse LU plus the product-form
/// eta chain accumulated since the last refactorization (flat storage,
/// cheap to clone into a warm-start snapshot).
#[derive(Debug, Clone)]
pub struct Basis {
    m: usize,
    repr: Repr,
    /// Adaptive Markowitz-style relative pivot threshold used by sparse
    /// refactorizations; starts at [`PIVOT_REL_TOL`] and is raised by
    /// [`Basis::tighten_pivot_tol`] when residual certification fails.
    pivot_rel_tol: f64,
}

impl Basis {
    /// Factorizes the given basis columns, picking the backend by size
    /// (dense at or below [`DENSE_MAX`] rows, sparse LU above).
    pub fn factorize(m: usize, basis_cols: &[&[(u32, f64)]]) -> Result<Basis, Singular> {
        if m <= DENSE_MAX {
            Ok(Basis {
                m,
                repr: Repr::Dense {
                    inv: DenseInv::factorize(m, basis_cols)?,
                    updates: 0,
                },
                pivot_rel_tol: PIVOT_REL_TOL,
            })
        } else {
            Basis::factorize_sparse(m, basis_cols)
        }
    }

    /// Forces the sparse-LU backend regardless of size (the kernels'
    /// differential tests and benches use this; production callers want
    /// [`Basis::factorize`]).
    pub fn factorize_sparse(m: usize, basis_cols: &[&[(u32, f64)]]) -> Result<Basis, Singular> {
        Ok(Basis {
            m,
            repr: Repr::Sparse(Box::new(SparseBasis {
                lu: SparseLu::factorize(m, basis_cols)?,
                eta_r: Vec::new(),
                eta_diag: Vec::new(),
                eta_ptr: vec![0],
                eta_idx: Vec::new(),
                eta_val: Vec::new(),
            })),
            pivot_rel_tol: PIVOT_REL_TOL,
        })
    }

    /// Trades sparsity for stability: raises the relative pivot threshold
    /// used by subsequent sparse refactorizations (×3 per call, capped at
    /// [`crate::tol::LU_PIVOT_REL_MAX`], which is close to full partial
    /// pivoting). Returns `false` when no further tightening is possible —
    /// either the cap is reached or the backend is dense (whose
    /// Gauss–Jordan factorization already does max-magnitude partial
    /// pivoting). The simplex's accuracy monitor calls this when the
    /// primal residual stays above tolerance after a refactorization.
    pub fn tighten_pivot_tol(&mut self) -> bool {
        if matches!(self.repr, Repr::Dense { .. }) {
            return false;
        }
        let next = (self.pivot_rel_tol * 3.0).min(crate::tol::LU_PIVOT_REL_MAX);
        if next <= self.pivot_rel_tol {
            return false;
        }
        self.pivot_rel_tol = next;
        true
    }

    /// Refactorizes this basis from `basis_cols` in place; the sparse
    /// backend reuses all of its storage plus the caller's workspace
    /// (zero steady-state allocations) and discards the eta chain. On
    /// [`Singular`] the basis must not be used for further solves.
    pub fn refactorize_with(
        &mut self,
        m: usize,
        basis_cols: &[&[(u32, f64)]],
        scratch: &mut FactorScratch,
    ) -> Result<(), Singular> {
        self.m = m;
        // The backend chosen at construction is kept: the basis dimension
        // never changes mid-solve, and forced-sparse bases (tests,
        // benches) must stay sparse across refactorizations.
        match &mut self.repr {
            Repr::Dense { inv, updates } => {
                *inv = DenseInv::factorize(m, basis_cols)?;
                *updates = 0;
                Ok(())
            }
            Repr::Sparse(sb) => {
                let donor = std::mem::replace(&mut sb.lu, SparseLu::empty());
                sb.lu = SparseLu::factorize_tol(m, basis_cols, scratch, donor, self.pivot_rel_tol)?;
                sb.eta_r.clear();
                sb.eta_diag.clear();
                sb.eta_ptr.clear();
                sb.eta_ptr.push(0);
                sb.eta_idx.clear();
                sb.eta_val.clear();
                Ok(())
            }
        }
    }

    /// Basis dimension.
    pub fn m(&self) -> usize {
        self.m
    }

    /// `x ← B⁻¹ x` (row space in, position space out).
    pub fn ftran(&self, x: &mut [f64], scratch: &mut Vec<f64>) {
        match &self.repr {
            Repr::Dense { inv, .. } => inv.ftran(x, scratch),
            Repr::Sparse(sb) => {
                sb.lu.ftran(x, scratch);
                for (k, (&r, &d)) in sb.eta_r.iter().zip(&sb.eta_diag).enumerate() {
                    let t = x[r as usize];
                    if t == 0.0 {
                        continue;
                    }
                    x[r as usize] = d * t;
                    for e in sb.eta_ptr[k] as usize..sb.eta_ptr[k + 1] as usize {
                        x[sb.eta_idx[e] as usize] += sb.eta_val[e] * t;
                    }
                }
            }
        }
    }

    /// `x ← x' B⁻¹` (position space in, row space out).
    pub fn btran(&self, x: &mut [f64], scratch: &mut Vec<f64>) {
        match &self.repr {
            Repr::Dense { inv, .. } => inv.btran(x, scratch),
            Repr::Sparse(sb) => {
                for (k, (&r, &d)) in sb.eta_r.iter().zip(&sb.eta_diag).enumerate().rev() {
                    let mut acc = x[r as usize] * d;
                    for e in sb.eta_ptr[k] as usize..sb.eta_ptr[k + 1] as usize {
                        let xi = x[sb.eta_idx[e] as usize];
                        if xi != 0.0 {
                            acc += sb.eta_val[e] * xi;
                        }
                    }
                    x[r as usize] = acc;
                }
                sb.lu.btran(x, scratch);
            }
        }
    }

    /// Applies the pivot that replaced the basic variable at position `r`,
    /// where `w = B⁻¹ a_q` is the FTRAN of the entering column under the
    /// *current* basis. Rejects pivots too small to divide by.
    pub fn update(&mut self, r: usize, w: &[f64]) -> Result<(), Singular> {
        match &mut self.repr {
            Repr::Dense { inv, updates } => {
                inv.update(r, w)?;
                *updates += 1;
                Ok(())
            }
            Repr::Sparse(sb) => {
                let piv = w[r];
                if piv.abs() < SINGULAR_TOL {
                    return Err(Singular);
                }
                for (i, &wi) in w.iter().enumerate() {
                    if i != r && wi != 0.0 {
                        sb.eta_idx.push(i as u32);
                        sb.eta_val.push(-wi / piv);
                    }
                }
                sb.eta_r.push(r as u32);
                sb.eta_diag.push(1.0 / piv);
                sb.eta_ptr.push(sb.eta_idx.len() as u32);
                Ok(())
            }
        }
    }

    /// Basis-change updates applied since the last factorization.
    pub fn updates_since_factorize(&self) -> usize {
        match &self.repr {
            Repr::Dense { updates, .. } => *updates,
            Repr::Sparse(sb) => sb.eta_r.len(),
        }
    }

    /// Nonzeros in the underlying factors (dense: the full inverse).
    pub fn lu_nnz(&self) -> usize {
        match &self.repr {
            Repr::Dense { inv, .. } => inv.binv.len(),
            Repr::Sparse(sb) => sb.lu.nnz(),
        }
    }

    /// Whether the accumulated updates warrant refactorizing — the
    /// update-vs-refactorize policy per backend. Dense: a long in-place
    /// update run only accumulates round-off, so the cap is generous
    /// (matching the dense core this module replaced). Sparse: once the
    /// eta chain's nonzeros rival the factors' own, every FTRAN/BTRAN
    /// pays more for the chain than for the triangular solves, and the
    /// (cheap, allocation-free) refactorization wins; the flat floor
    /// keeps borderline bases from refactorizing every couple of pivots.
    pub fn should_refactorize(&self) -> bool {
        match &self.repr {
            Repr::Dense { updates, .. } => *updates >= 1000,
            Repr::Sparse(sb) => {
                let cap = sb.lu.nnz().max(512);
                sb.eta_r.len() >= MAX_ETAS || sb.eta_idx.len() + sb.eta_r.len() > cap
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Dense reference solve via Gauss-Jordan; panics on singular input.
    fn dense_solve(m: usize, cols: &[Vec<(u32, f64)>], b: &[f64], transpose: bool) -> Vec<f64> {
        // a[r][c] = entry (row r, position c).
        let mut a = vec![vec![0.0f64; m]; m];
        for (c, col) in cols.iter().enumerate() {
            for &(r, v) in col {
                if transpose {
                    a[c][r as usize] = v;
                } else {
                    a[r as usize][c] = v;
                }
            }
        }
        let mut rhs = b.to_vec();
        for p in 0..m {
            let best = (p..m)
                .max_by(|&i, &j| a[i][p].abs().partial_cmp(&a[j][p].abs()).unwrap())
                .unwrap();
            a.swap(p, best);
            rhs.swap(p, best);
            let d = a[p][p];
            assert!(d.abs() > 1e-12, "singular reference");
            for c in 0..m {
                a[p][c] /= d;
            }
            rhs[p] /= d;
            for r in 0..m {
                if r != p && a[r][p] != 0.0 {
                    let f = a[r][p];
                    for c in 0..m {
                        a[r][c] -= f * a[p][c];
                    }
                    rhs[r] -= f * rhs[p];
                }
            }
        }
        rhs
    }

    fn refs(cols: &[Vec<(u32, f64)>]) -> Vec<&[(u32, f64)]> {
        cols.iter().map(|c| c.as_slice()).collect()
    }

    #[test]
    fn factorize_identity() {
        let cols: Vec<Vec<(u32, f64)>> = (0..4).map(|i| vec![(i as u32, 1.0)]).collect();
        let lu = SparseLu::factorize(4, &refs(&cols)).unwrap();
        let mut s = Vec::new();
        let mut x = vec![3.0, -1.0, 0.0, 2.0];
        lu.ftran(&mut x, &mut s);
        assert_eq!(x, vec![3.0, -1.0, 0.0, 2.0]);
        let mut y = vec![1.0, 2.0, 3.0, 4.0];
        lu.btran(&mut y, &mut s);
        assert_eq!(y, vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn ftran_btran_match_dense_reference() {
        // A fixed sparse 5x5 with an awkward (permuted, off-diagonal)
        // structure.
        let cols: Vec<Vec<(u32, f64)>> = vec![
            vec![(1, 2.0), (3, -1.0)],
            vec![(0, 1.0), (4, 0.5)],
            vec![(2, -3.0)],
            vec![(0, 4.0), (1, 1.0), (3, 2.0)],
            vec![(2, 1.0), (4, -2.0)],
        ];
        let lu = SparseLu::factorize(5, &refs(&cols)).unwrap();
        let mut s = Vec::new();
        let b = vec![1.0, -2.0, 0.5, 3.0, 0.0];
        let mut x = b.clone();
        lu.ftran(&mut x, &mut s);
        let want = dense_solve(5, &cols, &b, false);
        for (got, want) in x.iter().zip(&want) {
            assert!((got - want).abs() < 1e-9, "{x:?} vs {want:?}");
        }
        let c = vec![0.0, 1.0, -1.0, 2.0, 0.5];
        let mut y = c.clone();
        lu.btran(&mut y, &mut s);
        let want = dense_solve(5, &cols, &c, true);
        for (got, want) in y.iter().zip(&want) {
            assert!((got - want).abs() < 1e-9, "{y:?} vs {want:?}");
        }
    }

    #[test]
    fn singular_basis_is_rejected() {
        let cols: Vec<Vec<(u32, f64)>> = vec![
            vec![(0, 1.0), (1, 1.0)],
            vec![(0, 2.0), (1, 2.0)], // linearly dependent
            vec![(2, 1.0)],
        ];
        assert!(SparseLu::factorize(3, &refs(&cols)).is_err());
    }

    #[test]
    fn update_replaces_a_column() {
        // Start from the identity, replace position 1 with a new column,
        // and check FTRAN/BTRAN against the dense inverse of the updated
        // matrix.
        let cols: Vec<Vec<(u32, f64)>> = (0..3).map(|i| vec![(i as u32, 1.0)]).collect();
        let mut basis = Basis::factorize(3, &refs(&cols)).unwrap();
        let mut s = Vec::new();
        let newcol: Vec<(u32, f64)> = vec![(0, 1.0), (1, 3.0), (2, -1.0)];
        let mut w = vec![0.0; 3];
        for &(r, a) in &newcol {
            w[r as usize] = a;
        }
        basis.ftran(&mut w, &mut s);
        basis.update(1, &w).unwrap();
        assert_eq!(basis.updates_since_factorize(), 1);

        let mut updated = cols.clone();
        updated[1] = newcol;
        let b = vec![2.0, -1.0, 4.0];
        let mut x = b.clone();
        basis.ftran(&mut x, &mut s);
        let want = dense_solve(3, &updated, &b, false);
        for (got, want) in x.iter().zip(&want) {
            assert!((got - want).abs() < 1e-9);
        }
        let mut y = b.clone();
        basis.btran(&mut y, &mut s);
        let want = dense_solve(3, &updated, &b, true);
        for (got, want) in y.iter().zip(&want) {
            assert!((got - want).abs() < 1e-9);
        }
    }

    #[test]
    fn tiny_update_pivot_is_rejected() {
        let cols: Vec<Vec<(u32, f64)>> = (0..2).map(|i| vec![(i as u32, 1.0)]).collect();
        let mut basis = Basis::factorize(2, &refs(&cols)).unwrap();
        let w = vec![1.0, 0.0];
        assert_eq!(basis.update(1, &w), Err(Singular));
    }
}
