//! Integration stress tests for the milp crate: classical problem families
//! with independently computable optima.

use milp::{Cmp, Model, Sense, SolveStatus, VarKind};

/// Assignment problem: n×n cost matrix, MIP vs brute-force permutations.
fn solve_assignment(costs: &[Vec<f64>]) -> (f64, f64) {
    let n = costs.len();
    let mut m = Model::new(Sense::Minimize);
    let mut xs = vec![vec![]; n];
    for i in 0..n {
        for j in 0..n {
            xs[i].push(m.add_var(format!("x{i}_{j}"), VarKind::Binary, 0.0, 1.0, costs[i][j]));
        }
    }
    for i in 0..n {
        let row: Vec<_> = (0..n).map(|j| (xs[i][j], 1.0)).collect();
        m.add_constr(row, Cmp::Eq, 1.0);
        let col: Vec<_> = (0..n).map(|j| (xs[j][i], 1.0)).collect();
        m.add_constr(col, Cmp::Eq, 1.0);
    }
    let sol = m.solve_mip().expect("assignment always feasible");
    assert_eq!(sol.status, SolveStatus::Optimal);
    m.check_feasible(&sol.values, 1e-6)
        .expect("solution must validate");

    // Brute force over permutations.
    let mut perm: Vec<usize> = (0..n).collect();
    let mut best = f64::INFINITY;
    permute(&mut perm, 0, &mut |p| {
        let c: f64 = p.iter().enumerate().map(|(i, &j)| costs[i][j]).sum();
        if c < best {
            best = c;
        }
    });
    (sol.objective, best)
}

fn permute(p: &mut Vec<usize>, k: usize, f: &mut impl FnMut(&[usize])) {
    if k == p.len() {
        f(p);
        return;
    }
    for i in k..p.len() {
        p.swap(k, i);
        permute(p, k + 1, f);
        p.swap(k, i);
    }
}

#[test]
fn assignment_matches_brute_force() {
    // Deterministic pseudo-random 6x6 matrix.
    let n = 6;
    let costs: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            (0..n)
                .map(|j| ((i * 7 + j * 13) % 17) as f64 + 1.0)
                .collect()
        })
        .collect();
    let (mip, brute) = solve_assignment(&costs);
    assert!((mip - brute).abs() < 1e-6, "mip {mip} vs brute {brute}");
}

#[test]
fn assignment_with_ties() {
    let n = 5;
    let costs: Vec<Vec<f64>> = (0..n)
        .map(|i| (0..n).map(|j| ((i + j) % 3) as f64).collect())
        .collect();
    let (mip, brute) = solve_assignment(&costs);
    assert!((mip - brute).abs() < 1e-6);
}

/// Balanced transportation problem with integral supplies/demands: the LP
/// optimum is integral (total unimodularity) and verifiable by hand on a
/// 2×3 instance.
#[test]
fn transportation_lp_is_integral_and_optimal() {
    // Supplies: [20, 30]; demands: [10, 25, 15].
    // Costs:  s0: [8, 6, 10], s1: [9, 12, 13].
    let mut m = Model::new(Sense::Minimize);
    let costs = [[8.0, 6.0, 10.0], [9.0, 12.0, 13.0]];
    let supplies = [20.0, 30.0];
    let demands = [10.0, 25.0, 15.0];
    let mut x = vec![vec![]; 2];
    for i in 0..2 {
        for j in 0..3 {
            x[i].push(m.add_var(
                format!("x{i}{j}"),
                VarKind::Continuous,
                0.0,
                f64::INFINITY,
                costs[i][j],
            ));
        }
    }
    for i in 0..2 {
        let row: Vec<_> = (0..3).map(|j| (x[i][j], 1.0)).collect();
        m.add_constr(row, Cmp::Le, supplies[i]);
    }
    for j in 0..3 {
        let col: Vec<_> = (0..2).map(|i| (x[i][j], 1.0)).collect();
        m.add_constr(col, Cmp::Ge, demands[j]);
    }
    let sol = m.solve_lp().unwrap();
    m.check_feasible(&sol.values, 1e-6).unwrap();
    // Hand-computed optimum: send s0 -> d1 20 (cost 6); s1 -> d0 10 (9),
    // s1 -> d1 5 (12), s1 -> d2 15 (13) = 120 + 90 + 60 + 195 = 465.
    assert!(
        (sol.objective - 465.0).abs() < 1e-6,
        "obj = {}",
        sol.objective
    );
    // Integral by unimodularity.
    for v in &sol.values {
        assert!((v - v.round()).abs() < 1e-6);
    }
}

/// A chain of big-M-free implications: y_i >= y_{i+1} with a budget —
/// stresses bound propagation through presolve and the B&B.
#[test]
fn monotone_chain_with_budget() {
    let n = 12;
    let mut m = Model::new(Sense::Maximize);
    let ys: Vec<_> = (0..n)
        .map(|i| m.add_var(format!("y{i}"), VarKind::Binary, 0.0, 1.0, (n - i) as f64))
        .collect();
    for w in ys.windows(2) {
        m.add_constr(vec![(w[0], 1.0), (w[1], -1.0)], Cmp::Ge, 0.0);
    }
    let all: Vec<_> = ys.iter().map(|&y| (y, 1.0)).collect();
    m.add_constr(all, Cmp::Le, 5.0);
    let sol = m.solve_mip().unwrap();
    // Monotone + budget 5 -> take the first five: 12+11+10+9+8 = 50.
    assert!(
        (sol.objective - 50.0).abs() < 1e-6,
        "obj = {}",
        sol.objective
    );
    for (i, &y) in ys.iter().enumerate() {
        let expect = if i < 5 { 1.0 } else { 0.0 };
        assert!((sol.value(y) - expect).abs() < 1e-6, "y{i}");
    }
}

/// Fractional knapsack LP against the exact greedy closed form.
#[test]
fn fractional_knapsack_closed_form() {
    let values = [60.0, 100.0, 120.0];
    let weights = [10.0, 20.0, 30.0];
    let cap = 50.0;
    let mut m = Model::new(Sense::Maximize);
    let xs: Vec<_> = (0..3)
        .map(|i| m.add_var(format!("x{i}"), VarKind::Continuous, 0.0, 1.0, values[i]))
        .collect();
    let terms: Vec<_> = xs.iter().zip(&weights).map(|(&x, &w)| (x, w)).collect();
    m.add_constr(terms, Cmp::Le, cap);
    let sol = m.solve_lp().unwrap();
    // Greedy by density: item0 (6/kg), item1 (5/kg), then 2/3 of item2:
    // 60 + 100 + 80 = 240.
    assert!((sol.objective - 240.0).abs() < 1e-6);
}

/// 0/1 knapsack against dynamic programming.
#[test]
fn knapsack_01_matches_dp() {
    let values = [10.0, 40.0, 30.0, 50.0, 35.0, 25.0, 5.0];
    let weights = [5.0, 4.0, 6.0, 3.0, 2.0, 7.0, 1.0];
    let cap = 10usize;
    let mut m = Model::new(Sense::Maximize);
    let xs: Vec<_> = (0..values.len())
        .map(|i| m.add_var(format!("x{i}"), VarKind::Binary, 0.0, 1.0, values[i]))
        .collect();
    let terms: Vec<_> = xs.iter().zip(&weights).map(|(&x, &w)| (x, w)).collect();
    m.add_constr(terms, Cmp::Le, cap as f64);
    let sol = m.solve_mip().unwrap();

    // Integer-weight DP.
    let mut dp = vec![0.0f64; cap + 1];
    for i in 0..values.len() {
        let w = weights[i] as usize;
        for c in (w..=cap).rev() {
            dp[c] = dp[c].max(dp[c - w] + values[i]);
        }
    }
    assert!(
        (sol.objective - dp[cap]).abs() < 1e-6,
        "mip {} vs dp {}",
        sol.objective,
        dp[cap]
    );
}

/// Infeasible system detected through either presolve or phase 1.
#[test]
fn infeasible_chain() {
    let mut m = Model::new(Sense::Minimize);
    let x = m.add_var("x", VarKind::Continuous, 0.0, 10.0, 1.0);
    let y = m.add_var("y", VarKind::Continuous, 0.0, 10.0, 1.0);
    m.add_constr(vec![(x, 1.0), (y, 1.0)], Cmp::Ge, 15.0);
    m.add_constr(vec![(x, 1.0), (y, 1.0)], Cmp::Le, 5.0);
    assert!(matches!(m.solve_lp(), Err(milp::SolverError::Infeasible)));
    assert!(matches!(m.solve_mip(), Err(milp::SolverError::Infeasible)));
}

/// Degenerate LP with many redundant constraints still terminates and is
/// correct (anti-cycling safeguard).
#[test]
fn degenerate_pyramid() {
    let mut m = Model::new(Sense::Maximize);
    let x = m.add_var("x", VarKind::Continuous, 0.0, f64::INFINITY, 1.0);
    let y = m.add_var("y", VarKind::Continuous, 0.0, f64::INFINITY, 1.0);
    let z = m.add_var("z", VarKind::Continuous, 0.0, f64::INFINITY, 1.0);
    // Many planes through the same apex (1,1,1).
    for a in 1..=6 {
        let af = a as f64;
        m.add_constr(vec![(x, af), (y, 1.0), (z, 1.0)], Cmp::Le, af + 2.0);
        m.add_constr(vec![(x, 1.0), (y, af), (z, 1.0)], Cmp::Le, af + 2.0);
        m.add_constr(vec![(x, 1.0), (y, 1.0), (z, af)], Cmp::Le, af + 2.0);
    }
    let sol = m.solve_lp().unwrap();
    assert!(
        (sol.objective - 3.0).abs() < 1e-6,
        "obj = {}",
        sol.objective
    );
}
