//! Property tests for the warm-start layer: re-optimizing a perturbed
//! model from the previous optimal basis must agree with a cold solve.
//!
//! Models are random bounded LPs (finite box bounds, so `Unbounded` is
//! impossible and every disagreement is a real bug). A *chain* of random
//! perturbations — right-hand sides, variable bounds, objective
//! coefficients — is applied one link at a time; after every link the
//! warm-started solve (basis carried along the chain) is compared against
//! a from-scratch solve:
//!
//! * both must agree on feasibility, and
//! * on feasible links the objectives must match within tolerance (the
//!   optimal *vertex* may legitimately differ).
//!
//! A second property runs the same contract through the MIP layer:
//! `solve_mip_warm` with node-level basis reuse against a cold
//! `solve_mip`, over covering programs whose coverage target drifts.
//!
//! Perturbation kind 3 rewrites a whole row's coefficients via
//! `Model::set_constr`: the per-column fingerprint scheme must either
//! reuse the basis (edit missed the basic columns) or silently fall back
//! cold — never disagree with a from-scratch solve.

use milp::{Cmp, LpWarmStart, MipOptions, Model, Sense, SolverError, VarKind};
use proptest::prelude::*;

/// One chain link, decoded from a generated tuple: `kind % 4` selects
/// rhs / bounds / cost / row-rewrite, the remaining fields are reused per
/// kind.
#[derive(Debug, Clone, Copy)]
struct Perturbation {
    kind: u32,
    slot: usize,
    a: f64,
    b: f64,
}

fn apply(model: &mut Model, p: &Perturbation, nvars: usize, nrows: usize) {
    match p.kind % 4 {
        0 => {
            // Overwrite a row's right-hand side (scaled into a range that
            // crosses feasible and infeasible territory).
            let id = model.constr(p.slot % nrows);
            model.set_rhs(id, p.a * 3.0 - 6.0);
        }
        1 => {
            // Move the variable's box to [lo, lo + width].
            let v = model.var(p.slot % nvars);
            let lo = p.a.min(3.0);
            model.set_bounds(v, lo, lo + p.b.max(0.25));
        }
        2 => {
            let v = model.var(p.slot % nvars);
            model.set_cost(v, p.a * 2.0 - 4.0);
        }
        _ => {
            // Rewrite a row's coefficients (small integers, possibly
            // zeroing the row): exercises the touched-column fingerprint
            // invalidation behind warm-start reuse.
            let id = model.constr(p.slot % nrows);
            let v1 = model.var(p.slot % nvars);
            let v2 = model.var((p.slot + 3) % nvars);
            let c1 = (p.a - 2.0).round();
            let c2 = (p.b - 1.0).round();
            model.set_constr(id, vec![(v1, c1), (v2, c2)]);
        }
    }
}

/// A generated row: sparse terms, a comparison selector, and a rhs.
type RawRow = (Vec<(usize, i32)>, u32, f64);

/// Builds the random LP: box-bounded vars, small integer coefficients.
fn build(vars: &[(f64, f64)], rows: &[RawRow]) -> Model {
    let mut m = Model::new(Sense::Minimize);
    let ids: Vec<_> = vars
        .iter()
        .enumerate()
        .map(|(i, &(hi, cost))| m.add_var(format!("x{i}"), VarKind::Continuous, 0.0, hi, cost))
        .collect();
    for (terms, cmp, rhs) in rows {
        let cmp = match cmp % 3 {
            0 => Cmp::Le,
            1 => Cmp::Ge,
            _ => Cmp::Eq,
        };
        let terms: Vec<_> = terms
            .iter()
            .map(|&(v, a)| (ids[v % ids.len()], a as f64))
            .collect();
        m.add_constr(terms, cmp, *rhs);
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Warm-started LP re-optimization along a random perturbation chain
    /// agrees with cold solves on feasibility and objective.
    #[test]
    fn warm_lp_chain_matches_cold(
        vars in proptest::collection::vec((1.0f64..=8.0, -4.0f64..=4.0), 2..=5),
        rows in proptest::collection::vec(
            (
                proptest::collection::vec((0usize..8, -3i32..=3), 1..=4),
                0u32..3,
                -6.0f64..=12.0,
            ),
            1..=4,
        ),
        links in proptest::collection::vec((0u32..4, 0usize..8, 0.0f64..=4.0, 0.0f64..=4.0), 1..=6),
    ) {
        let mut model = build(&vars, &rows);
        let nvars = vars.len();
        let nrows = rows.len();
        let mut basis: Option<LpWarmStart> = None;

        // Seed the chain (cold solve through the warm API must agree with
        // the plain LP entry point).
        match model.solve_lp_warm(None) {
            Ok((s, b)) => {
                basis = b;
                let cold = model.solve_lp().unwrap();
                prop_assert!((s.objective - cold.objective).abs() < 1e-6);
            }
            Err(SolverError::Infeasible) => {}
            Err(e) => panic!("unexpected error on the seed solve: {e}"),
        }

        for link in &links {
            let p = Perturbation { kind: link.0, slot: link.1, a: link.2, b: link.3 };
            apply(&mut model, &p, nvars, nrows);
            let warm = model.solve_lp_warm(basis.as_ref());
            let cold = model.solve_lp();
            match (warm, cold) {
                (Ok((w, b)), Ok(c)) => {
                    prop_assert!(
                        (w.objective - c.objective).abs() < 1e-6 * (1.0 + c.objective.abs()),
                        "warm {} vs cold {} after {:?}",
                        w.objective,
                        c.objective,
                        p
                    );
                    basis = b;
                }
                (Err(SolverError::Infeasible), Err(SolverError::Infeasible)) => {}
                (w, c) => panic!("warm {w:?} disagrees with cold {c:?} after {p:?}"),
            }
        }
    }

    /// A warm basis captured at one scaling must survive an exact
    /// power-of-two rescaling of the whole model: the scaling fingerprint
    /// in [`LpWarmStart`] either certifies reuse or the solve falls back
    /// cold — in both cases the answer matches a from-scratch solve of
    /// the rescaled twin (the objective is invariant under the rescaling,
    /// so the two must agree to relative tolerance). A follow-up bound
    /// perturbation then chains a second warm solve *within* the rescaled
    /// space.
    #[test]
    fn warm_survives_pow2_rescaling(
        vars in proptest::collection::vec((1.0f64..=8.0, -4.0f64..=4.0), 2..=5),
        rows in proptest::collection::vec(
            (
                proptest::collection::vec((0usize..8, -3i32..=3), 1..=4),
                0u32..3,
                -6.0f64..=12.0,
            ),
            1..=4,
        ),
        rpow in proptest::collection::vec(-24i32..=24, 4),
        cpow in proptest::collection::vec(-24i32..=24, 5),
        link in (0u32..4, 0usize..8, 0.0f64..=4.0, 0.0f64..=4.0),
    ) {
        let model = build(&vars, &rows);
        let mut basis: Option<LpWarmStart> = None;
        if let Ok((_, b)) = model.solve_lp_warm(None) {
            basis = b;
        }
        let mut scaled = model.equivalently_rescaled(&rpow[..rows.len()], &cpow[..vars.len()]);
        let warm = scaled.solve_lp_warm(basis.as_ref());
        let cold = scaled.solve_lp();
        let chained = match (warm, cold) {
            (Ok((w, b)), Ok(c)) => {
                prop_assert!(
                    (w.objective - c.objective).abs() <= 1e-6 * (1.0 + c.objective.abs()),
                    "cross-scale warm {} vs cold {}",
                    w.objective,
                    c.objective
                );
                b
            }
            (Err(SolverError::Infeasible), Err(SolverError::Infeasible)) => None,
            (w, c) => panic!("cross-scale warm {w:?} disagrees with cold {c:?}"),
        };
        // Chain a perturbation in the rescaled space — expressed *at the
        // row's / variable's own scale* so the perturbed model stays an
        // exact rescaling of a unit-scale model (an O(1) edit on a 2^-24
        // row would instead create a mixed-scale instance outside any
        // solver's precision contract). The carried basis fingerprints
        // refer to the rescaled model now, so reuse is legal and must
        // still match a cold solve.
        let p = Perturbation { kind: link.0, slot: link.1, a: link.2, b: link.3 };
        match p.kind % 3 {
            0 => {
                let r = p.slot % rows.len();
                let id = scaled.constr(r);
                scaled.set_rhs(id, (p.a * 3.0 - 6.0) * (rpow[r] as f64).exp2());
            }
            1 => {
                let j = p.slot % vars.len();
                let v = scaled.var(j);
                let s = (-cpow[j] as f64).exp2();
                let lo = p.a.min(3.0);
                scaled.set_bounds(v, lo * s, (lo + p.b.max(0.25)) * s);
            }
            _ => {
                let j = p.slot % vars.len();
                let v = scaled.var(j);
                scaled.set_cost(v, (p.a * 2.0 - 4.0) * (cpow[j] as f64).exp2());
            }
        }
        match (scaled.solve_lp_warm(chained.as_ref()), scaled.solve_lp()) {
            (Ok((w, _)), Ok(c)) => {
                prop_assert!(
                    (w.objective - c.objective).abs() <= 1e-6 * (1.0 + c.objective.abs()),
                    "in-scale warm {} vs cold {} after {:?}",
                    w.objective,
                    c.objective,
                    p
                );
            }
            (Err(SolverError::Infeasible), Err(SolverError::Infeasible)) => {}
            (w, c) => panic!("in-scale warm {w:?} disagrees with cold {c:?} after {p:?}"),
        }
    }

    /// MIP chains: a binary covering program whose coverage right-hand
    /// side drifts along the chain. Warm roots + node basis reuse must
    /// reproduce the cold proven optimum at every link.
    #[test]
    fn warm_mip_chain_matches_cold(
        nvars in 3usize..=6,
        supports in proptest::collection::vec(
            proptest::collection::vec(0usize..6, 1..=3), 2..=5),
        targets in proptest::collection::vec(0.5f64..=3.0, 1..=4),
    ) {
        let mut m = Model::new(Sense::Minimize);
        let ids: Vec<_> = (0..nvars)
            .map(|i| m.add_var(format!("x{i}"), VarKind::Binary, 0.0, 1.0, 1.0 + (i % 3) as f64))
            .collect();
        let mut row_ids = Vec::new();
        for s in &supports {
            let terms: Vec<_> = s.iter().map(|&v| (ids[v % nvars], 1.0)).collect();
            row_ids.push(m.add_constr(terms, Cmp::Ge, 1.0));
        }
        let warm_opts = MipOptions { warm_basis: true, ..Default::default() };
        let mut warm_state: Option<milp::MipWarmStart> = None;
        for (i, &t) in targets.iter().enumerate() {
            let row = row_ids[i % row_ids.len()];
            m.set_rhs(row, t.round());
            let warm = m.solve_mip_warm(&warm_opts, warm_state.as_ref());
            let cold = m.solve_mip();
            match (warm, cold) {
                (Ok((w, state)), Ok(c)) => {
                    prop_assert!(
                        (w.objective - c.objective).abs() < 1e-6,
                        "warm {} vs cold {} at target {t}",
                        w.objective,
                        c.objective
                    );
                    warm_state = state;
                }
                (Err(SolverError::Infeasible), Err(SolverError::Infeasible)) => {}
                (w, c) => panic!("warm {w:?} disagrees with cold {c:?} at target {t}"),
            }
        }
    }
}
