//! Differential tests for the sparse LU kernels (`milp::lu`): over random
//! sparse nonsingular bases, `factorize → FTRAN/BTRAN` must agree with a
//! dense Gauss–Jordan inverse to 1e-9 — including after long chains of
//! product-form updates crossing forced refactorization boundaries.
//!
//! The generators deliberately produce awkward matrices: permuted
//! diagonals (so the factorization must pivot), off-diagonal fill, and
//! magnitude spreads of several orders. Singular inputs are rejected by
//! the generator (a guaranteed nonzero permuted diagonal keeps every
//! matrix invertible while leaving the off-diagonal structure random).

use milp::lu::{Basis, FactorScratch, SparseLu};
use proptest::prelude::*;

/// Dense reference: builds the full matrix (optionally transposed) and
/// solves by Gauss–Jordan with partial pivoting.
fn dense_solve(m: usize, cols: &[Vec<(u32, f64)>], b: &[f64], transpose: bool) -> Vec<f64> {
    let mut a = vec![vec![0.0f64; m]; m];
    for (c, col) in cols.iter().enumerate() {
        for &(r, v) in col {
            if transpose {
                a[c][r as usize] = v;
            } else {
                a[r as usize][c] = v;
            }
        }
    }
    let mut rhs = b.to_vec();
    for p in 0..m {
        let best = (p..m)
            .max_by(|&i, &j| a[i][p].abs().partial_cmp(&a[j][p].abs()).unwrap())
            .unwrap();
        a.swap(p, best);
        rhs.swap(p, best);
        let d = a[p][p];
        assert!(d.abs() > 1e-10, "reference matrix must be nonsingular");
        for c in 0..m {
            a[p][c] /= d;
        }
        rhs[p] /= d;
        for r in 0..m {
            if r != p && a[r][p] != 0.0 {
                let f = a[r][p];
                for c in 0..m {
                    a[r][c] -= f * a[p][c];
                }
                rhs[r] -= f * rhs[p];
            }
        }
    }
    rhs
}

/// Decodes the generated raw data into a nonsingular sparse basis: column
/// `j` gets a strong entry on the permuted diagonal row `perm[j]` plus
/// random off-diagonal entries.
fn build_cols(
    m: usize,
    perm_seed: u64,
    diags: &[f64],
    extras: &[(usize, usize, f64)],
) -> Vec<Vec<(u32, f64)>> {
    // Deterministic permutation from the seed (Fisher-Yates with an LCG).
    let mut perm: Vec<u32> = (0..m as u32).collect();
    let mut state = perm_seed | 1;
    for i in (1..m).rev() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (state >> 33) as usize % (i + 1);
        perm.swap(i, j);
    }
    let mut cols: Vec<Vec<(u32, f64)>> = (0..m)
        .map(|j| vec![(perm[j], 4.0 + diags[j % diags.len()].abs())])
        .collect();
    for &(cj, rr, v) in extras {
        let j = cj % m;
        let r = (rr % m) as u32;
        if r != perm[j] && v.abs() > 1e-3 && !cols[j].iter().any(|&(er, _)| er == r) {
            cols[j].push((r, v));
        }
    }
    for c in &mut cols {
        c.sort_unstable_by_key(|e| e.0);
    }
    cols
}

fn refs(cols: &[Vec<(u32, f64)>]) -> Vec<&[(u32, f64)]> {
    cols.iter().map(|c| c.as_slice()).collect()
}

/// Integer sibling of [`build_cols`] for the exact-rational property:
/// a strong entry on a permuted diagonal plus small integer extras, dense
/// row-major. Every entry is a small integer so the rational reference
/// stays within `i128`.
fn build_int_dense(
    m: usize,
    perm_seed: u64,
    diags: &[i64],
    extras: &[(usize, usize, i64)],
) -> Vec<Vec<i64>> {
    let mut perm: Vec<usize> = (0..m).collect();
    let mut state = perm_seed | 1;
    for i in (1..m).rev() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (state >> 33) as usize % (i + 1);
        perm.swap(i, j);
    }
    let mut a = vec![vec![0i64; m]; m];
    for (j, row) in perm.iter().enumerate() {
        a[*row][j] = 4 + diags[j % diags.len()].abs();
    }
    for &(cj, rr, v) in extras {
        let (j, r) = (cj % m, rr % m);
        if r != perm[j] && v != 0 && a[r][j] == 0 {
            a[r][j] = v;
        }
    }
    a
}

/// Exact rational Gauss elimination over `i128` fractions (gcd-reduced,
/// overflow-checked). Returns `None` for singular systems or draws whose
/// intermediate fractions overflow — both are rejected, not failures.
fn rational_solve(a: &[Vec<i64>], b: &[i64], transpose: bool) -> Option<Vec<f64>> {
    fn gcd(mut a: i128, mut b: i128) -> i128 {
        while b != 0 {
            (a, b) = (b, a % b);
        }
        a.abs().max(1)
    }
    #[derive(Clone, Copy)]
    struct Q(i128, i128); // numerator / positive denominator
    impl Q {
        fn new(n: i128, d: i128) -> Option<Q> {
            if d == 0 {
                return None;
            }
            let g = gcd(n, d);
            let s = if d < 0 { -1 } else { 1 };
            Some(Q(s * n / g, s * d / g))
        }
        fn sub_mul(self, f: Q, x: Q) -> Option<Q> {
            // self − f·x, reducing f·x first to keep magnitudes down.
            let g1 = gcd(f.0, x.1);
            let g2 = gcd(x.0, f.1);
            let pn = (f.0 / g1).checked_mul(x.0 / g2)?;
            let pd = (f.1 / g2).checked_mul(x.1 / g1)?;
            let n = self
                .0
                .checked_mul(pd)?
                .checked_sub(pn.checked_mul(self.1)?)?;
            Q::new(n, self.1.checked_mul(pd)?)
        }
        fn div(self, o: Q) -> Option<Q> {
            if o.0 == 0 {
                return None;
            }
            Q::new(self.0.checked_mul(o.1)?, self.1.checked_mul(o.0)?)
        }
    }
    let m = a.len();
    let mut w: Vec<Vec<Q>> = (0..m)
        .map(|r| {
            (0..m)
                .map(|c| Q(if transpose { a[c][r] } else { a[r][c] } as i128, 1))
                .collect()
        })
        .collect();
    let mut rhs: Vec<Q> = b.iter().map(|&v| Q(v as i128, 1)).collect();
    for p in 0..m {
        let piv = (p..m).find(|&r| w[r][p].0 != 0)?;
        w.swap(p, piv);
        rhs.swap(p, piv);
        let d = w[p][p];
        for c in p..m {
            w[p][c] = w[p][c].div(d)?;
        }
        rhs[p] = rhs[p].div(d)?;
        for r in 0..m {
            if r != p && w[r][p].0 != 0 {
                let f = w[r][p];
                for c in p..m {
                    w[r][c] = w[r][c].sub_mul(f, w[p][c])?;
                }
                rhs[r] = rhs[r].sub_mul(f, rhs[p])?;
            }
        }
    }
    Some(rhs.iter().map(|q| q.0 as f64 / q.1 as f64).collect())
}

fn assert_close_tol(got: &[f64], want: &[f64], what: &str, tol: f64) {
    let scale = want.iter().fold(1.0f64, |a, &v| a.max(v.abs()));
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert!(
            (g - w).abs() <= tol * scale,
            "{what}[{i}]: {g} vs {w} (scale {scale})"
        );
    }
}

fn assert_close(got: &[f64], want: &[f64], what: &str) {
    assert_close_tol(got, want, what, 1e-9);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// FTRAN and BTRAN off a fresh factorization match the dense inverse.
    #[test]
    fn factorize_matches_dense_inverse(
        m in 2usize..24,
        perm_seed in 0u64..u64::MAX,
        diags in proptest::collection::vec(0.1f64..50.0, 1..8),
        extras in proptest::collection::vec((0usize..24, 0usize..24, -8.0f64..8.0), 0..64),
        b in proptest::collection::vec(-10.0f64..10.0, 24),
    ) {
        let cols = build_cols(m, perm_seed, &diags, &extras);
        let lu = SparseLu::factorize(m, &refs(&cols)).expect("generator output is nonsingular");
        let mut scratch = Vec::new();

        let mut x = b[..m].to_vec();
        lu.ftran(&mut x, &mut scratch);
        prop_assert!(x.iter().all(|v| v.is_finite()));
        assert_close(&x, &dense_solve(m, &cols, &b[..m], false), "ftran");

        let mut y = b[..m].to_vec();
        lu.btran(&mut y, &mut scratch);
        assert_close(&y, &dense_solve(m, &cols, &b[..m], true), "btran");
    }

    /// A long chain of product-form updates — long enough to cross the
    /// forced refactorization boundary, at which point the basis is
    /// refactorized from the replaced column set and the chain restarts —
    /// stays within 1e-9 of the dense inverse of the *current* matrix.
    #[test]
    fn update_chain_matches_dense_inverse(
        m in 2usize..16,
        perm_seed in 0u64..u64::MAX,
        diags in proptest::collection::vec(0.1f64..50.0, 1..8),
        extras in proptest::collection::vec((0usize..16, 0usize..16, -8.0f64..8.0), 0..40),
        replacements in proptest::collection::vec(
            (0usize..16, 0u64..u64::MAX, 0.5f64..20.0, proptest::collection::vec((0usize..16, -6.0f64..6.0), 0..4)),
            1..40,
        ),
        b in proptest::collection::vec(-10.0f64..10.0, 16),
    ) {
        let mut cols = build_cols(m, perm_seed, &diags, &extras);
        // Force the sparse backend even at tiny sizes: this suite tests
        // the sparse kernels specifically (the dense backend is the
        // reference, not the subject).
        let mut basis = Basis::factorize_sparse(m, &refs(&cols)).expect("nonsingular");
        let mut scratch = Vec::new();
        let mut fscratch = FactorScratch::default();
        let mut crossed_boundary = false;

        for (pos_raw, dseed, dval, extra) in replacements {
            let pos = pos_raw % m;
            // Replacement column: a strong entry on a pseudo-random row
            // plus a few extras. A replacement that would make the basis
            // singular shows up as a near-zero FTRAN pivot and the link
            // is skipped.
            let strong_row = ((dseed >> 7) as usize) % m;
            let mut newcol: Vec<(u32, f64)> = vec![(strong_row as u32, dval + 2.0)];
            for &(rr, v) in &extra {
                let r = (rr % m) as u32;
                if v.abs() > 1e-3 && !newcol.iter().any(|&(er, _)| er == r) {
                    newcol.push((r, v));
                }
            }
            newcol.sort_unstable_by_key(|e| e.0);

            // w = B⁻¹ a_new under the current basis; a near-zero pivot
            // means the replacement would make the basis singular — skip.
            let mut w = vec![0.0; m];
            for &(r, a) in &newcol {
                w[r as usize] = a;
            }
            basis.ftran(&mut w, &mut scratch);
            // Skip near-singular replacements: a tiny pivot is legal for
            // the kernel but makes the comparison ill-conditioned (both
            // sides lose digits, just different ones).
            if w[pos].abs() < 1e-3 {
                continue;
            }
            prop_assert!(basis.update(pos, &w).is_ok());
            cols[pos] = newcol;

            if basis.should_refactorize() {
                crossed_boundary = true;
                basis
                    .refactorize_with(m, &refs(&cols), &mut fscratch)
                    .expect("replaced basis stays nonsingular");
                prop_assert_eq!(basis.updates_since_factorize(), 0);
            }

            // After every link the solves must match the dense inverse of
            // the *current* column set. The chain is allowed an order of
            // magnitude of product-form round-off drift on top of the
            // fresh-factorization tolerance (a dropped or misplaced
            // update would be off by O(1), not O(1e-8)); the forced
            // refactorization boundary resets the drift.
            let mut x = b[..m].to_vec();
            basis.ftran(&mut x, &mut scratch);
            assert_close_tol(&x, &dense_solve(m, &cols, &b[..m], false), "chain ftran", 1e-8);
            let mut y = b[..m].to_vec();
            basis.btran(&mut y, &mut scratch);
            assert_close_tol(&y, &dense_solve(m, &cols, &b[..m], true), "chain btran", 1e-8);
        }
        // Not an assertion (short chains legitimately stay under the cap),
        // but keep the flag observable for shrunk failure output.
        let _ = crossed_boundary;
    }

    /// Ill-conditioned bases: an exact power-of-two row/column rescaling
    /// (entry magnitudes spanning ~8 orders) of a small *integer* basis,
    /// solved against an exact rational reference of the unscaled system.
    /// The scaled solution relates to the unscaled one by exact powers of
    /// two, so each component can be checked at **its own scale** — a
    /// global max-magnitude comparison would silently pass garbage in the
    /// small components, which is exactly where relative-threshold
    /// pivoting (Markowitz tolerance relative to the column max) earns
    /// its keep. The pow range stays within ±7 because the kernel's
    /// singularity verdict is deliberately relative to the *whole-matrix*
    /// magnitude (post-elimination cancellation noise lives at that
    /// scale); spreads beyond it are the equilibration layer's job, which
    /// runs before the LU ever sees a simplex basis.
    #[test]
    fn pow2_rescaled_basis_matches_rational_reference(
        m in 2usize..=8,
        perm_seed in 0u64..u64::MAX,
        diags in proptest::collection::vec(1i64..=8, 1..8),
        extras in proptest::collection::vec((0usize..8, 0usize..8, -3i64..=3), 0..24),
        rpow in proptest::collection::vec(-7i32..=7, 8),
        cpow in proptest::collection::vec(-7i32..=7, 8),
        b in proptest::collection::vec(-9i64..=9, 8),
    ) {
        let dense = build_int_dense(m, perm_seed, &diags, &extras);
        // Exact rational reference of the integer system; reject the rare
        // singular or i128-overflowing draw, and (via the condition proxy
        // below) draws whose base is nearly singular — there *both* sides
        // of the comparison lose digits, just different ones.
        let exact = match (
            rational_solve(&dense, &b[..m], false),
            rational_solve(&dense, &b[..m], true),
        ) {
            (Some(x), Some(y)) => {
                let xmax = x.iter().chain(&y).fold(0.0f64, |a, &v| a.max(v.abs()));
                if xmax <= 1e4 { Some((x, y, xmax)) } else { None }
            }
            _ => None,
        };
        let Some((x_exact, y_exact, xmax)) = exact else {
            continue;
        };

        // Scaled sparse basis: a'_rj = a_rj · 2^(rpow[r] + cpow[j]).
        let cols: Vec<Vec<(u32, f64)>> = (0..m)
            .map(|j| {
                (0..m)
                    .filter(|&r| dense[r][j] != 0)
                    .map(|r| {
                        let s = ((rpow[r] + cpow[j]) as f64).exp2();
                        (r as u32, dense[r][j] as f64 * s)
                    })
                    .collect()
            })
            .collect();
        let lu = SparseLu::factorize(m, &refs(&cols)).expect("exactly rescaled nonsingular basis");
        let mut scratch = Vec::new();

        // FTRAN: A'x' = b' with b'_r = b_r·2^rpow[r] has the exact
        // solution x'_j = x_j·2^-cpow[j].
        let mut x: Vec<f64> = (0..m).map(|r| b[r] as f64 * (rpow[r] as f64).exp2()).collect();
        lu.ftran(&mut x, &mut scratch);
        for j in 0..m {
            let scale = (-cpow[j] as f64).exp2();
            let want = x_exact[j] * scale;
            prop_assert!(
                (x[j] - want).abs() <= 1e-8 * xmax.max(1.0) * scale,
                "ftran[{j}]: {} vs exact {want} (cpow {})",
                x[j],
                cpow[j]
            );
        }

        // BTRAN: A'ᵀy' = b'' with b''_j = b_j·2^cpow[j] has the exact
        // solution y'_r = y_r·2^-rpow[r].
        let mut y: Vec<f64> = (0..m).map(|j| b[j] as f64 * (cpow[j] as f64).exp2()).collect();
        lu.btran(&mut y, &mut scratch);
        for r in 0..m {
            let scale = (-rpow[r] as f64).exp2();
            let want = y_exact[r] * scale;
            prop_assert!(
                (y[r] - want).abs() <= 1e-8 * xmax.max(1.0) * scale,
                "btran[{r}]: {} vs exact {want} (rpow {})",
                y[r],
                rpow[r]
            );
        }
    }

    /// Hyper-sparse right-hand sides (unit vectors) solve exactly like
    /// dense ones — the zero-skipping fast paths must not drop updates.
    #[test]
    fn unit_rhs_matches_dense_rhs_path(
        m in 2usize..20,
        perm_seed in 0u64..u64::MAX,
        diags in proptest::collection::vec(0.1f64..50.0, 1..8),
        extras in proptest::collection::vec((0usize..20, 0usize..20, -8.0f64..8.0), 0..48),
        unit in 0usize..20,
    ) {
        let cols = build_cols(m, perm_seed, &diags, &extras);
        let lu = SparseLu::factorize(m, &refs(&cols)).expect("nonsingular");
        let mut scratch = Vec::new();
        let mut e = vec![0.0; m];
        e[unit % m] = 1.0;

        let mut x = e.clone();
        lu.ftran(&mut x, &mut scratch);
        assert_close(&x, &dense_solve(m, &cols, &e, false), "unit ftran");

        let mut y = e.clone();
        lu.btran(&mut y, &mut scratch);
        assert_close(&y, &dense_solve(m, &cols, &e, true), "unit btran");
    }
}
