//! Differential tests for the sparse LU kernels (`milp::lu`): over random
//! sparse nonsingular bases, `factorize → FTRAN/BTRAN` must agree with a
//! dense Gauss–Jordan inverse to 1e-9 — including after long chains of
//! product-form updates crossing forced refactorization boundaries.
//!
//! The generators deliberately produce awkward matrices: permuted
//! diagonals (so the factorization must pivot), off-diagonal fill, and
//! magnitude spreads of several orders. Singular inputs are rejected by
//! the generator (a guaranteed nonzero permuted diagonal keeps every
//! matrix invertible while leaving the off-diagonal structure random).

use milp::lu::{Basis, FactorScratch, SparseLu};
use proptest::prelude::*;

/// Dense reference: builds the full matrix (optionally transposed) and
/// solves by Gauss–Jordan with partial pivoting.
fn dense_solve(m: usize, cols: &[Vec<(u32, f64)>], b: &[f64], transpose: bool) -> Vec<f64> {
    let mut a = vec![vec![0.0f64; m]; m];
    for (c, col) in cols.iter().enumerate() {
        for &(r, v) in col {
            if transpose {
                a[c][r as usize] = v;
            } else {
                a[r as usize][c] = v;
            }
        }
    }
    let mut rhs = b.to_vec();
    for p in 0..m {
        let best = (p..m)
            .max_by(|&i, &j| a[i][p].abs().partial_cmp(&a[j][p].abs()).unwrap())
            .unwrap();
        a.swap(p, best);
        rhs.swap(p, best);
        let d = a[p][p];
        assert!(d.abs() > 1e-10, "reference matrix must be nonsingular");
        for c in 0..m {
            a[p][c] /= d;
        }
        rhs[p] /= d;
        for r in 0..m {
            if r != p && a[r][p] != 0.0 {
                let f = a[r][p];
                for c in 0..m {
                    a[r][c] -= f * a[p][c];
                }
                rhs[r] -= f * rhs[p];
            }
        }
    }
    rhs
}

/// Decodes the generated raw data into a nonsingular sparse basis: column
/// `j` gets a strong entry on the permuted diagonal row `perm[j]` plus
/// random off-diagonal entries.
fn build_cols(
    m: usize,
    perm_seed: u64,
    diags: &[f64],
    extras: &[(usize, usize, f64)],
) -> Vec<Vec<(u32, f64)>> {
    // Deterministic permutation from the seed (Fisher-Yates with an LCG).
    let mut perm: Vec<u32> = (0..m as u32).collect();
    let mut state = perm_seed | 1;
    for i in (1..m).rev() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (state >> 33) as usize % (i + 1);
        perm.swap(i, j);
    }
    let mut cols: Vec<Vec<(u32, f64)>> = (0..m)
        .map(|j| vec![(perm[j], 4.0 + diags[j % diags.len()].abs())])
        .collect();
    for &(cj, rr, v) in extras {
        let j = cj % m;
        let r = (rr % m) as u32;
        if r != perm[j] && v.abs() > 1e-3 && !cols[j].iter().any(|&(er, _)| er == r) {
            cols[j].push((r, v));
        }
    }
    for c in &mut cols {
        c.sort_unstable_by_key(|e| e.0);
    }
    cols
}

fn refs(cols: &[Vec<(u32, f64)>]) -> Vec<&[(u32, f64)]> {
    cols.iter().map(|c| c.as_slice()).collect()
}

fn assert_close_tol(got: &[f64], want: &[f64], what: &str, tol: f64) {
    let scale = want.iter().fold(1.0f64, |a, &v| a.max(v.abs()));
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert!(
            (g - w).abs() <= tol * scale,
            "{what}[{i}]: {g} vs {w} (scale {scale})"
        );
    }
}

fn assert_close(got: &[f64], want: &[f64], what: &str) {
    assert_close_tol(got, want, what, 1e-9);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// FTRAN and BTRAN off a fresh factorization match the dense inverse.
    #[test]
    fn factorize_matches_dense_inverse(
        m in 2usize..24,
        perm_seed in 0u64..u64::MAX,
        diags in proptest::collection::vec(0.1f64..50.0, 1..8),
        extras in proptest::collection::vec((0usize..24, 0usize..24, -8.0f64..8.0), 0..64),
        b in proptest::collection::vec(-10.0f64..10.0, 24),
    ) {
        let cols = build_cols(m, perm_seed, &diags, &extras);
        let lu = SparseLu::factorize(m, &refs(&cols)).expect("generator output is nonsingular");
        let mut scratch = Vec::new();

        let mut x = b[..m].to_vec();
        lu.ftran(&mut x, &mut scratch);
        prop_assert!(x.iter().all(|v| v.is_finite()));
        assert_close(&x, &dense_solve(m, &cols, &b[..m], false), "ftran");

        let mut y = b[..m].to_vec();
        lu.btran(&mut y, &mut scratch);
        assert_close(&y, &dense_solve(m, &cols, &b[..m], true), "btran");
    }

    /// A long chain of product-form updates — long enough to cross the
    /// forced refactorization boundary, at which point the basis is
    /// refactorized from the replaced column set and the chain restarts —
    /// stays within 1e-9 of the dense inverse of the *current* matrix.
    #[test]
    fn update_chain_matches_dense_inverse(
        m in 2usize..16,
        perm_seed in 0u64..u64::MAX,
        diags in proptest::collection::vec(0.1f64..50.0, 1..8),
        extras in proptest::collection::vec((0usize..16, 0usize..16, -8.0f64..8.0), 0..40),
        replacements in proptest::collection::vec(
            (0usize..16, 0u64..u64::MAX, 0.5f64..20.0, proptest::collection::vec((0usize..16, -6.0f64..6.0), 0..4)),
            1..40,
        ),
        b in proptest::collection::vec(-10.0f64..10.0, 16),
    ) {
        let mut cols = build_cols(m, perm_seed, &diags, &extras);
        // Force the sparse backend even at tiny sizes: this suite tests
        // the sparse kernels specifically (the dense backend is the
        // reference, not the subject).
        let mut basis = Basis::factorize_sparse(m, &refs(&cols)).expect("nonsingular");
        let mut scratch = Vec::new();
        let mut fscratch = FactorScratch::default();
        let mut crossed_boundary = false;

        for (pos_raw, dseed, dval, extra) in replacements {
            let pos = pos_raw % m;
            // Replacement column: a strong entry on a pseudo-random row
            // plus a few extras. A replacement that would make the basis
            // singular shows up as a near-zero FTRAN pivot and the link
            // is skipped.
            let strong_row = ((dseed >> 7) as usize) % m;
            let mut newcol: Vec<(u32, f64)> = vec![(strong_row as u32, dval + 2.0)];
            for &(rr, v) in &extra {
                let r = (rr % m) as u32;
                if v.abs() > 1e-3 && !newcol.iter().any(|&(er, _)| er == r) {
                    newcol.push((r, v));
                }
            }
            newcol.sort_unstable_by_key(|e| e.0);

            // w = B⁻¹ a_new under the current basis; a near-zero pivot
            // means the replacement would make the basis singular — skip.
            let mut w = vec![0.0; m];
            for &(r, a) in &newcol {
                w[r as usize] = a;
            }
            basis.ftran(&mut w, &mut scratch);
            // Skip near-singular replacements: a tiny pivot is legal for
            // the kernel but makes the comparison ill-conditioned (both
            // sides lose digits, just different ones).
            if w[pos].abs() < 1e-3 {
                continue;
            }
            prop_assert!(basis.update(pos, &w).is_ok());
            cols[pos] = newcol;

            if basis.should_refactorize() {
                crossed_boundary = true;
                basis
                    .refactorize_with(m, &refs(&cols), &mut fscratch)
                    .expect("replaced basis stays nonsingular");
                prop_assert_eq!(basis.updates_since_factorize(), 0);
            }

            // After every link the solves must match the dense inverse of
            // the *current* column set. The chain is allowed an order of
            // magnitude of product-form round-off drift on top of the
            // fresh-factorization tolerance (a dropped or misplaced
            // update would be off by O(1), not O(1e-8)); the forced
            // refactorization boundary resets the drift.
            let mut x = b[..m].to_vec();
            basis.ftran(&mut x, &mut scratch);
            assert_close_tol(&x, &dense_solve(m, &cols, &b[..m], false), "chain ftran", 1e-8);
            let mut y = b[..m].to_vec();
            basis.btran(&mut y, &mut scratch);
            assert_close_tol(&y, &dense_solve(m, &cols, &b[..m], true), "chain btran", 1e-8);
        }
        // Not an assertion (short chains legitimately stay under the cap),
        // but keep the flag observable for shrunk failure output.
        let _ = crossed_boundary;
    }

    /// Hyper-sparse right-hand sides (unit vectors) solve exactly like
    /// dense ones — the zero-skipping fast paths must not drop updates.
    #[test]
    fn unit_rhs_matches_dense_rhs_path(
        m in 2usize..20,
        perm_seed in 0u64..u64::MAX,
        diags in proptest::collection::vec(0.1f64..50.0, 1..8),
        extras in proptest::collection::vec((0usize..20, 0usize..20, -8.0f64..8.0), 0..48),
        unit in 0usize..20,
    ) {
        let cols = build_cols(m, perm_seed, &diags, &extras);
        let lu = SparseLu::factorize(m, &refs(&cols)).expect("nonsingular");
        let mut scratch = Vec::new();
        let mut e = vec![0.0; m];
        e[unit % m] = 1.0;

        let mut x = e.clone();
        lu.ftran(&mut x, &mut scratch);
        assert_close(&x, &dense_solve(m, &cols, &e, false), "unit ftran");

        let mut y = e.clone();
        lu.btran(&mut y, &mut scratch);
        assert_close(&y, &dense_solve(m, &cols, &e, true), "unit btran");
    }
}
