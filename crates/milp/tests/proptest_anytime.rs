//! Property tests for the anytime contract of the budgeted MIP search.
//!
//! Instances are the same random LP2-shaped covering programs as
//! `proptest_mip_search` (binary `x_e` with unit cost, VUB rows, one
//! coverage row). For every instance the uninterrupted optimum is solved
//! once, then the budgeted search must uphold three properties at 1 and
//! 4 workers:
//!
//! * **Sandwich**: any budget yields an outcome with
//!   `bound ≤ optimal ≤ incumbent.objective` (minimization) — an
//!   interrupted solve always carries a valid quality certificate.
//! * **Monotone**: growing the budget never worsens the incumbent.
//! * **Reproduction**: a budget at least the one-shot solve's own
//!   [`Solution::work`] reproduces that solve **bitwise** — budgeting is
//!   a wrapper, never a perturbation — and the whole trajectory is
//!   byte-identical across worker counts (1 vs 4) at every budget.

use milp::{Cmp, MipOptions, MipOutcome, Model, Sense, Solution, VarKind};
use proptest::prelude::*;

/// A random covering instance: per-traffic volumes and edge supports
/// (non-empty, so every target `k ≤ 1` is feasible), plus the fraction.
#[derive(Debug, Clone)]
struct Instance {
    num_edges: usize,
    traffics: Vec<(f64, Vec<usize>)>,
    k: f64,
}

fn instances() -> impl Strategy<Value = Instance> {
    (4usize..9, 3usize..10, 0.5f64..1.0).prop_flat_map(|(ne, nt, k)| {
        let support = proptest::collection::vec(0..ne, 1..=ne.min(4));
        let traffic = (1.0f64..9.0, support);
        proptest::collection::vec(traffic, nt).prop_map(move |raw| Instance {
            num_edges: ne,
            traffics: raw
                .into_iter()
                .map(|(v, mut s)| {
                    s.sort_unstable();
                    s.dedup();
                    (v, s)
                })
                .collect(),
            k,
        })
    })
}

/// Builds the LP2-shaped model for an instance.
fn build(inst: &Instance) -> Model {
    let mut m = Model::new(Sense::Minimize);
    let xs: Vec<_> = (0..inst.num_edges)
        .map(|e| m.add_var(format!("x{e}"), VarKind::Binary, 0.0, 1.0, 1.0))
        .collect();
    let total: f64 = inst.traffics.iter().map(|(v, _)| v).sum();
    let mut coverage = Vec::with_capacity(inst.traffics.len());
    for (t, (v, support)) in inst.traffics.iter().enumerate() {
        let d = m.add_var(format!("d{t}"), VarKind::Continuous, 0.0, 1.0, 0.0);
        let mut terms: Vec<_> = support.iter().map(|&e| (xs[e], 1.0)).collect();
        terms.push((d, -1.0));
        m.add_constr(terms, Cmp::Ge, 0.0);
        coverage.push((d, *v));
    }
    m.add_constr(coverage, Cmp::Ge, inst.k * total);
    m
}

/// The full enriched engine (cuts, reliability branching, 4-node
/// batches) at a fixed batch size, with an optional work budget.
fn engine(threads: usize, work_budget: Option<u64>) -> MipOptions {
    MipOptions {
        cut_rounds: 4,
        node_cut_depth: 2,
        reliability: 2,
        strong_cands: 4,
        threads,
        node_batch: 4,
        warm_basis: true,
        work_budget,
        ..Default::default()
    }
}

fn assert_solutions_bitwise(a: &Solution, b: &Solution) {
    prop_assert_eq!(a.objective.to_bits(), b.objective.to_bits());
    prop_assert_eq!(a.iterations, b.iterations);
    prop_assert_eq!(a.nodes, b.nodes);
    prop_assert_eq!(a.work, b.work);
    prop_assert_eq!(a.values.len(), b.values.len());
    for (i, (x, y)) in a.values.iter().zip(&b.values).enumerate() {
        prop_assert_eq!(x.to_bits(), y.to_bits(), "value {} differs", i);
    }
}

/// The outcomes of the same budgeted solve at two worker counts must be
/// byte-identical: same variant, same incumbent (bit for bit), same
/// bound bits, same work accounting.
fn assert_outcomes_bitwise(a: &MipOutcome, b: &MipOutcome) {
    match (a, b) {
        (MipOutcome::Complete(x), MipOutcome::Complete(y)) => assert_solutions_bitwise(x, y),
        (
            MipOutcome::Interrupted {
                incumbent: ia,
                bound: ba,
                work_spent: wa,
            },
            MipOutcome::Interrupted {
                incumbent: ib,
                bound: bb,
                work_spent: wb,
            },
        ) => {
            prop_assert_eq!(ba.to_bits(), bb.to_bits());
            prop_assert_eq!(wa, wb);
            match (ia, ib) {
                (None, None) => {}
                (Some(x), Some(y)) => assert_solutions_bitwise(x, y),
                _ => panic!("incumbent presence differs across worker counts"),
            }
        }
        _ => panic!("outcome variant differs across worker counts"),
    }
}

/// Incumbent objective for monotonicity checks; no incumbent counts as
/// `+inf` (minimization: any later incumbent is an improvement).
fn incumbent_objective(o: &MipOutcome) -> f64 {
    o.solution().map_or(f64::INFINITY, |s| s.objective)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn budgets_are_anytime_monotone_and_reproducing(inst in instances()) {
        let model = build(&inst);
        let opt = model.solve_mip_with(&engine(1, None)).expect("covering instance is feasible");
        let tol = 1e-6 * (1.0 + opt.objective.abs());

        // A deterministic budget ladder derived from the one-shot cost:
        // starved, partial, half, and exactly the full amount.
        let ladder = [1u64, (opt.work / 4).max(1), (opt.work / 2).max(1), opt.work];

        let mut last_incumbent = f64::INFINITY;
        for &budget in &ladder {
            let (one, _) = model
                .solve_mip_anytime(&engine(1, Some(budget)), None)
                .expect("budgeted solve never errors on a feasible instance");
            let (four, _) = model
                .solve_mip_anytime(&engine(4, Some(budget)), None)
                .expect("budgeted solve never errors on a feasible instance");

            // (c) worker-count independence at every budget.
            assert_outcomes_bitwise(&one, &four);

            // (a) the sandwich: bound ≤ optimal ≤ incumbent.
            match &one {
                MipOutcome::Complete(s) => {
                    prop_assert!(
                        (s.objective - opt.objective).abs() <= tol,
                        "complete-under-budget disagrees with optimum: {} vs {}",
                        s.objective, opt.objective
                    );
                }
                MipOutcome::Interrupted { incumbent, bound, work_spent } => {
                    prop_assert!(*work_spent >= 1, "interruption must charge work");
                    prop_assert!(
                        *bound <= opt.objective + tol,
                        "dual bound {} exceeds the optimum {}", bound, opt.objective
                    );
                    if let Some(s) = incumbent {
                        prop_assert!(
                            s.objective >= opt.objective - tol,
                            "incumbent {} beats the proven optimum {}",
                            s.objective, opt.objective
                        );
                    }
                }
            }

            // (b) monotone: a larger budget never worsens the incumbent.
            let cur = incumbent_objective(&one);
            prop_assert!(
                cur <= last_incumbent + tol,
                "incumbent worsened as the budget grew: {} -> {}", last_incumbent, cur
            );
            last_incumbent = cur;
        }

        // (c) reproduction: budget == one-shot work yields Complete and
        // reproduces the unbudgeted solve bitwise, at 1 and 4 workers.
        for threads in [1usize, 4] {
            let (full, _) = model
                .solve_mip_anytime(&engine(threads, Some(opt.work)), None)
                .expect("feasible");
            match full {
                MipOutcome::Complete(s) => assert_solutions_bitwise(&s, &opt),
                MipOutcome::Interrupted { work_spent, .. } => prop_assert!(
                    false,
                    "budget equal to the one-shot work ({}) still tripped at {} \
                     ({} workers)", opt.work, work_spent, threads
                ),
            }
        }
    }
}
