//! Property tests for the enriched MIP search: cutting planes, reliability
//! branching, and the batch-synchronous parallel node pool must be
//! *transparent* — they may change how fast the search closes, never what
//! it returns.
//!
//! Instances are random LP2-shaped covering programs (the MECF structure
//! the flow-cover separator targets): binary `x_e` with unit cost, one
//! continuous `δ_t ∈ [0, 1]` per traffic, VUB rows `Σ_{e ∈ S_t} x_e ≥ δ_t`
//! and a coverage row `Σ v_t δ_t ≥ k·V`. Two properties:
//!
//! * **Differential**: the full engine (cuts at root and shallow nodes,
//!   reliability branching, 4-node batches across 2 workers, warm bases)
//!   agrees with a plain serial cut-free search on the objective — and
//!   hence, at `rel_gap = 1e-9` with unit costs, on the device count.
//! * **Determinism**: with a fixed `node_batch` the search trajectory is a
//!   function of the batch sequence alone, so 1 worker and 4 workers must
//!   return byte-identical results — nodes, iterations, objective, and
//!   every solution value.

use milp::{Cmp, MipOptions, Model, Sense, VarKind};
use proptest::prelude::*;

/// A random covering instance: per-traffic volumes and edge supports
/// (non-empty, so every target `k ≤ 1` is feasible), plus the fraction.
#[derive(Debug, Clone)]
struct Instance {
    num_edges: usize,
    traffics: Vec<(f64, Vec<usize>)>,
    k: f64,
}

fn instances() -> impl Strategy<Value = Instance> {
    (4usize..9, 3usize..10, 0.5f64..1.0).prop_flat_map(|(ne, nt, k)| {
        let support = proptest::collection::vec(0..ne, 1..=ne.min(4));
        let traffic = (1.0f64..9.0, support);
        proptest::collection::vec(traffic, nt).prop_map(move |raw| Instance {
            num_edges: ne,
            traffics: raw
                .into_iter()
                .map(|(v, mut s)| {
                    s.sort_unstable();
                    s.dedup();
                    (v, s)
                })
                .collect(),
            k,
        })
    })
}

/// Builds the LP2-shaped model for an instance.
fn build(inst: &Instance) -> Model {
    let mut m = Model::new(Sense::Minimize);
    let xs: Vec<_> = (0..inst.num_edges)
        .map(|e| m.add_var(format!("x{e}"), VarKind::Binary, 0.0, 1.0, 1.0))
        .collect();
    let total: f64 = inst.traffics.iter().map(|(v, _)| v).sum();
    let mut coverage = Vec::with_capacity(inst.traffics.len());
    for (t, (v, support)) in inst.traffics.iter().enumerate() {
        let d = m.add_var(format!("d{t}"), VarKind::Continuous, 0.0, 1.0, 0.0);
        let mut terms: Vec<_> = support.iter().map(|&e| (xs[e], 1.0)).collect();
        terms.push((d, -1.0));
        m.add_constr(terms, Cmp::Ge, 0.0);
        coverage.push((d, *v));
    }
    m.add_constr(coverage, Cmp::Ge, inst.k * total);
    m
}

/// The plain reference engine: serial, cut-free, most-infeasible-style
/// pseudocost start with no strong branching.
fn plain() -> MipOptions {
    MipOptions {
        cut_rounds: 0,
        node_cut_depth: 0,
        reliability: 0,
        strong_cands: 0,
        threads: 1,
        node_batch: 1,
        ..Default::default()
    }
}

/// The full enriched engine at a fixed batch size.
fn enriched(threads: usize) -> MipOptions {
    MipOptions {
        cut_rounds: 4,
        node_cut_depth: 2,
        reliability: 2,
        strong_cands: 4,
        threads,
        node_batch: 4,
        warm_basis: true,
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn enriched_engine_matches_plain_serial_search(inst in instances()) {
        let model = build(&inst);
        let a = model.solve_mip_with(&plain()).expect("covering instance is feasible");
        let b = model.solve_mip_with(&enriched(2)).expect("covering instance is feasible");
        // Same optimum ...
        prop_assert!(
            (a.objective - b.objective).abs() <= 1e-6 * (1.0 + a.objective.abs()),
            "plain {} vs enriched {}", a.objective, b.objective
        );
        // ... and with unit costs at rel_gap 1e-9, the same device count.
        prop_assert_eq!(a.objective.round() as u64, b.objective.round() as u64);
    }

    #[test]
    fn node_pool_is_deterministic_across_thread_counts(inst in instances()) {
        let model = build(&inst);
        let one = model.solve_mip_with(&enriched(1)).expect("feasible");
        let four = model.solve_mip_with(&enriched(4)).expect("feasible");
        prop_assert_eq!(one.nodes, four.nodes);
        prop_assert_eq!(one.iterations, four.iterations);
        prop_assert_eq!(one.objective.to_bits(), four.objective.to_bits());
        prop_assert_eq!(one.values.len(), four.values.len());
        for (i, (x, y)) in one.values.iter().zip(&four.values).enumerate() {
            prop_assert_eq!(x.to_bits(), y.to_bits(), "value {} differs", i);
        }
    }
}
