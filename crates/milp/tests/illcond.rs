//! Differential tests for the solver's numerical-robustness layer on
//! ill-conditioned instances.
//!
//! The oracle is a slow **exact rational simplex** (`i128` fractions,
//! Bland's rule, dense two-phase tableau): on small LPs with integer data
//! it returns the mathematically exact optimal objective or a proven
//! `Infeasible`. Every property then feeds the f64 solver a distorted view
//! of the same instance and demands agreement:
//!
//! * [`Model::equivalently_rescaled`] applies an exact power-of-two change
//!   of variables and row scaling, so the rescaled model has *identical*
//!   objective and feasibility status while its coefficients span up to
//!   `2^±30` — precisely the regime the equilibration scaling, Harris
//!   ratio test, and scale-relative tolerance contract exist for;
//! * near-parallel columns and duplicated equality rows produce the
//!   near-singular, degenerate bases that stress the LU pivot threshold
//!   and the bound-shifting anti-stall logic;
//! * wildly mixed cost magnitudes (`2^-18 .. 2^24` per variable) stress
//!   the per-phase relative optimality tolerance.
//!
//! A deterministic regression pins the `1e8`-scale bound-snapping
//! behavior of solution extraction: at-bound values snap exactly, interior
//! values several thousand units away from the bound must not.

use milp::{Cmp, LpWarmStart, Model, Sense, SolverError, VarKind};
use proptest::prelude::*;
use std::cmp::Ordering;

// ---------------------------------------------------------------------------
// Exact rational arithmetic (checked i128; overflow surfaces as None and the
// property skips the case).
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Frac {
    n: i128,
    d: i128, // always > 0
}

fn gcd(a: i128, b: i128) -> i128 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a.max(1)
}

impl Frac {
    fn new(n: i128, d: i128) -> Option<Frac> {
        if d == 0 {
            return None;
        }
        let sign = if d < 0 { -1 } else { 1 };
        let g = gcd(n, d);
        Some(Frac {
            n: sign * (n / g),
            d: (d / g).abs(),
        })
    }

    fn int(n: i64) -> Frac {
        Frac { n: n as i128, d: 1 }
    }

    fn zero() -> Frac {
        Frac::int(0)
    }

    fn is_zero(&self) -> bool {
        self.n == 0
    }

    fn add(self, o: Frac) -> Option<Frac> {
        let a = self.n.checked_mul(o.d)?;
        let b = o.n.checked_mul(self.d)?;
        Frac::new(a.checked_add(b)?, self.d.checked_mul(o.d)?)
    }

    fn sub(self, o: Frac) -> Option<Frac> {
        self.add(Frac { n: -o.n, d: o.d })
    }

    fn mul(self, o: Frac) -> Option<Frac> {
        Frac::new(self.n.checked_mul(o.n)?, self.d.checked_mul(o.d)?)
    }

    fn div(self, o: Frac) -> Option<Frac> {
        if o.n == 0 {
            return None;
        }
        Frac::new(self.n.checked_mul(o.d)?, self.d.checked_mul(o.n)?)
    }

    fn cmp_frac(&self, o: &Frac) -> Option<Ordering> {
        let a = self.n.checked_mul(o.d)?;
        let b = o.n.checked_mul(self.d)?;
        Some(a.cmp(&b))
    }

    fn to_f64(self) -> f64 {
        self.n as f64 / self.d as f64
    }
}

// ---------------------------------------------------------------------------
// Exact reference simplex: dense two-phase tableau with Bland's rule over a
// standard-form program built from boxed-variable rows.
// ---------------------------------------------------------------------------

#[derive(Debug, PartialEq)]
enum RefOutcome {
    Optimal(Frac),
    Infeasible,
}

/// A tiny LP in the test's raw form: `min c·x` subject to the rows and
/// `0 <= x_j <= hi_j`. Upper bounds are folded into explicit rows before
/// the standard-form conversion, so every variable is simply nonnegative.
#[derive(Debug)]
struct RawLp {
    costs: Vec<Frac>,
    /// `(dense coefficients, cmp, rhs)`.
    rows: Vec<(Vec<Frac>, Cmp, Frac)>,
    his: Vec<Frac>,
}

/// Exact rational solve; `None` on i128 overflow (caller skips the case).
fn reference_solve(lp: &RawLp) -> Option<RefOutcome> {
    let n = lp.costs.len();
    let mut rows: Vec<(Vec<Frac>, Cmp, Frac)> = lp.rows.clone();
    for (j, hi) in lp.his.iter().enumerate() {
        let mut a = vec![Frac::zero(); n];
        a[j] = Frac::int(1);
        rows.push((a, Cmp::Le, *hi));
    }
    let m = rows.len();

    // Standard form: structural columns, then one slack/surplus per
    // inequality, then one artificial per row. rhs made nonnegative.
    let n_slack = rows
        .iter()
        .filter(|(_, cmp, _)| !matches!(cmp, Cmp::Eq))
        .count();
    let ncols = n + n_slack + m;
    let mut tab: Vec<Vec<Frac>> = vec![vec![Frac::zero(); ncols + 1]; m];
    let mut basis: Vec<usize> = vec![0; m];
    let mut slack_at = n;
    for (i, (a, cmp, rhs)) in rows.iter().enumerate() {
        let neg = rhs.cmp_frac(&Frac::zero())? == Ordering::Less;
        let sgn = if neg { Frac::int(-1) } else { Frac::int(1) };
        for (j, &aj) in a.iter().enumerate() {
            tab[i][j] = sgn.mul(aj)?;
        }
        if !matches!(cmp, Cmp::Eq) {
            let dir = match cmp {
                Cmp::Le => Frac::int(1),
                Cmp::Ge => Frac::int(-1),
                Cmp::Eq => unreachable!(),
            };
            tab[i][slack_at] = sgn.mul(dir)?;
            slack_at += 1;
        }
        let art = n + n_slack + i;
        tab[i][art] = Frac::int(1);
        basis[i] = art;
        tab[i][ncols] = sgn.mul(*rhs)?;
    }

    // Phase 1: minimize the sum of artificials.
    let phase1: Vec<Frac> = (0..ncols)
        .map(|j| {
            if j >= n + n_slack {
                Frac::int(1)
            } else {
                Frac::zero()
            }
        })
        .collect();
    let art_start = n + n_slack;
    bland(&mut tab, &mut basis, &phase1, ncols, ncols + 1)?;
    let mut p1 = Frac::zero();
    for (i, &b) in basis.iter().enumerate() {
        if b >= art_start && !tab[i][ncols].is_zero() {
            p1 = p1.add(tab[i][ncols])?;
        }
    }
    if p1.cmp_frac(&Frac::zero())? == Ordering::Greater {
        return Some(RefOutcome::Infeasible);
    }

    // Drive leftover artificials (basic at zero) out of the basis before
    // phase 2 — left in place they could drift positive during phase-2
    // pivots and certify an infeasible "optimum". A degenerate pivot onto
    // any nonzero structural entry removes one; a row with no such entry
    // is redundant and is dropped from the tableau outright.
    let mut i = 0;
    while i < basis.len() {
        if basis[i] < art_start {
            i += 1;
            continue;
        }
        let piv_col = (0..art_start).find(|&j| !tab[i][j].is_zero() && !basis.contains(&j));
        match piv_col {
            Some(q) => {
                let piv = tab[i][q];
                for j in 0..ncols + 1 {
                    tab[i][j] = tab[i][j].div(piv)?;
                }
                let pivot_row = tab[i].clone();
                for (r, row) in tab.iter_mut().enumerate() {
                    if r == i || row[q].is_zero() {
                        continue;
                    }
                    let f = row[q];
                    for (e, p) in row.iter_mut().zip(&pivot_row) {
                        *e = e.sub(f.mul(*p)?)?;
                    }
                }
                basis[i] = q;
                i += 1;
            }
            None => {
                tab.remove(i);
                basis.remove(i);
            }
        }
    }

    // Phase 2: original costs, artificial columns barred from entering.
    let mut phase2 = vec![Frac::zero(); ncols];
    phase2[..n].copy_from_slice(&lp.costs);
    bland(&mut tab, &mut basis, &phase2, art_start, ncols + 1)?;
    let mut obj = Frac::zero();
    for (i, &b) in basis.iter().enumerate() {
        if b < n {
            obj = obj.add(lp.costs[b].mul(tab[i][ncols])?)?;
        }
    }
    Some(RefOutcome::Optimal(obj))
}

/// Bland-rule simplex sweep on the tableau: minimizes `costs` over the
/// first `enter_limit` columns. Returns `None` on overflow. Unboundedness
/// cannot occur (every variable is boxed), so it is treated as overflow.
fn bland(
    tab: &mut [Vec<Frac>],
    basis: &mut [usize],
    costs: &[Frac],
    enter_limit: usize,
    width: usize,
) -> Option<()> {
    let m = tab.len();
    let rhs = width - 1;
    for _round in 0..20_000 {
        // Reduced costs via c_j - c_B · B⁻¹ a_j, read off the tableau.
        let mut enter = None;
        for j in 0..enter_limit {
            if basis.contains(&j) {
                continue;
            }
            let mut z = costs[j];
            for i in 0..m {
                if !tab[i][j].is_zero() && !costs[basis[i]].is_zero() {
                    z = z.sub(costs[basis[i]].mul(tab[i][j])?)?;
                }
            }
            if z.cmp_frac(&Frac::zero())? == Ordering::Less {
                enter = Some(j); // Bland: first (smallest) index.
                break;
            }
        }
        let Some(q) = enter else { return Some(()) };
        // Ratio test; Bland tie-break on the smallest leaving basis index.
        let mut leave: Option<(usize, Frac)> = None;
        for i in 0..m {
            if tab[i][q].cmp_frac(&Frac::zero())? != Ordering::Greater {
                continue;
            }
            let ratio = tab[i][rhs].div(tab[i][q])?;
            let better = match &leave {
                None => true,
                Some((li, lr)) => match ratio.cmp_frac(lr)? {
                    Ordering::Less => true,
                    Ordering::Equal => basis[i] < basis[*li],
                    Ordering::Greater => false,
                },
            };
            if better {
                leave = Some((i, ratio));
            }
        }
        let (r, _) = leave?; // None = unbounded: impossible on boxed LPs.
                             // Pivot.
        let piv = tab[r][q];
        for j in 0..width {
            tab[r][j] = tab[r][j].div(piv)?;
        }
        for i in 0..m {
            if i == r || tab[i][q].is_zero() {
                continue;
            }
            let f = tab[i][q];
            for j in 0..width {
                tab[i][j] = tab[i][j].sub(f.mul(tab[r][j])?)?;
            }
        }
        basis[r] = q;
    }
    None // iteration-guard trip: treat like overflow and skip the case
}

// ---------------------------------------------------------------------------
// Shared generators: small integer boxed LPs plus their exact twin.
// ---------------------------------------------------------------------------

/// Raw generated instance: per-var `(hi, cost)`, rows of
/// `(sparse integer terms, cmp selector, integer rhs)`.
type RawVars = Vec<(i64, i64)>;
type RawRows = Vec<(Vec<(usize, i64)>, u32, i64)>;

fn decode_cmp(sel: u32) -> Cmp {
    match sel % 3 {
        0 => Cmp::Le,
        1 => Cmp::Ge,
        _ => Cmp::Eq,
    }
}

/// Builds the f64 model and the exact rational twin from the same data.
fn build_pair(vars: &RawVars, rows: &RawRows) -> (Model, RawLp) {
    let n = vars.len();
    let mut m = Model::new(Sense::Minimize);
    let ids: Vec<_> = vars
        .iter()
        .enumerate()
        .map(|(i, &(hi, cost))| {
            m.add_var(
                format!("x{i}"),
                VarKind::Continuous,
                0.0,
                hi as f64,
                cost as f64,
            )
        })
        .collect();
    let mut raw_rows = Vec::new();
    for (terms, sel, rhs) in rows {
        let cmp = decode_cmp(*sel);
        let mterms: Vec<_> = terms.iter().map(|&(v, a)| (ids[v % n], a as f64)).collect();
        m.add_constr(mterms, cmp, *rhs as f64);
        let mut dense = vec![Frac::zero(); n];
        for &(v, a) in terms {
            dense[v % n] = dense[v % n].add(Frac::int(a)).unwrap();
        }
        raw_rows.push((dense, cmp, Frac::int(*rhs)));
    }
    let raw = RawLp {
        costs: vars.iter().map(|&(_, c)| Frac::int(c)).collect(),
        rows: raw_rows,
        his: vars.iter().map(|&(h, _)| Frac::int(h)).collect(),
    };
    (m, raw)
}

/// Drives one solver-vs-reference comparison; `rel` is the relative
/// objective tolerance granted to the f64 side. Returns `false` when the
/// exact oracle overflowed `i128` and the case is skipped.
fn assert_matches_reference(model: &Model, raw: &RawLp, rel: f64, label: &str) -> bool {
    let Some(want) = reference_solve(raw) else {
        return false; // overflow in the oracle: skip
    };
    match (model.solve_lp(), want) {
        (Ok(sol), RefOutcome::Optimal(obj)) => {
            let obj = obj.to_f64();
            prop_assert!(
                (sol.objective - obj).abs() <= rel * (1.0 + obj.abs()),
                "{label}: solver {} vs exact {}",
                sol.objective,
                obj
            );
        }
        (Err(SolverError::Infeasible), RefOutcome::Infeasible) => {}
        (got, want) => panic!("{label}: solver {got:?} vs exact {want:?}\nraw: {raw:?}"),
    }
    true
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// An exact power-of-two rescaling (coefficients spanning up to 2^±30)
    /// must not change the reported objective or feasibility verdict:
    /// both the base model and its badly-scaled twin have to match the
    /// exact rational optimum.
    #[test]
    fn rescaled_lp_matches_rational_reference(
        vars in proptest::collection::vec((1i64..=8, -4i64..=4), 2..=5),
        rows in proptest::collection::vec(
            (
                proptest::collection::vec((0usize..8, -3i64..=3), 1..=4),
                0u32..3,
                -6i64..=12,
            ),
            1..=4,
        ),
        rpow in proptest::collection::vec(-30i32..=30, 4),
        cpow in proptest::collection::vec(-30i32..=30, 5),
    ) {
        let (base, raw) = build_pair(&vars, &rows);
        if assert_matches_reference(&base, &raw, 1e-8, "base") {
            let scaled = base.equivalently_rescaled(&rpow[..rows.len()], &cpow[..vars.len()]);
            assert_matches_reference(&scaled, &raw, 1e-8, "rescaled");
        }
    }

    /// Duplicated equality rows (degenerate blocks) plus near-parallel
    /// columns: the constraint matrix carries pairs of columns differing
    /// only in one entry, and an equality row repeated verbatim several
    /// times. Rescaling on top. The stalling/shifting and LU threshold
    /// machinery must still land on the exact optimum.
    #[test]
    fn degenerate_equality_blocks_match_reference(
        his in proptest::collection::vec(1i64..=6, 2..=3),
        costs in proptest::collection::vec(-3i64..=3, 2..=3),
        row in proptest::collection::vec(-2i64..=2, 3),
        rhs in -4i64..=8,
        dup in 2usize..=4,
        delta in 1i64..=2,
        rpow in proptest::collection::vec(-24i32..=24, 8),
    ) {
        let n = his.len().min(costs.len());
        // Columns: x0..x_{n-1} plus a near-parallel copy of x0 (same
        // coefficients everywhere except one row, offset by `delta`).
        let mut vars: RawVars = (0..n).map(|j| (his[j], costs[j])).collect();
        vars.push((his[0], costs[0]));
        let twin = n; // index of the near-parallel column
        let mut rows: RawRows = Vec::new();
        // The duplicated equality block over all columns.
        let base_terms: Vec<(usize, i64)> = (0..n)
            .map(|j| (j, row[j % row.len()]))
            .chain([(twin, row[0])])
            .collect();
        for _ in 0..dup {
            rows.push((base_terms.clone(), 2, rhs)); // 2 → Cmp::Eq
        }
        // One row separating the twin from x0 by `delta`.
        let mut sep = base_terms.clone();
        sep.last_mut().unwrap().1 += delta;
        rows.push((sep, 0, rhs.max(0) + 3)); // 0 → Cmp::Le
        let (base, raw) = build_pair(&vars, &rows);
        if assert_matches_reference(&base, &raw, 1e-8, "degenerate base") {
            let scaled = base.equivalently_rescaled(&rpow[..rows.len()], &rpow[..vars.len()]);
            assert_matches_reference(&scaled, &raw, 1e-8, "degenerate rescaled");
        }
    }

    /// Per-variable cost magnitudes spanning 2^-18 .. 2^24 (about
    /// 1e-6 .. 1e7): the per-phase relative optimality tolerance must keep
    /// pricing meaningful at both extremes, and the objective must match
    /// the exact reference computed with the same rational costs.
    #[test]
    fn wide_cost_ranges_match_reference(
        vars in proptest::collection::vec((1i64..=8, -4i64..=4), 2..=5),
        rows in proptest::collection::vec(
            (
                proptest::collection::vec((0usize..8, -3i64..=3), 1..=4),
                0u32..2, // Le / Ge only: keeps feasible cases common
                0i64..=12,
            ),
            1..=4,
        ),
        kpow in proptest::collection::vec(-18i32..=24, 5),
    ) {
        let (mut model, mut raw) = build_pair(&vars, &rows);
        for (j, &(_, c)) in vars.iter().enumerate() {
            let k = kpow[j % kpow.len()];
            let v = model.var(j);
            model.set_cost(v, c as f64 * (k as f64).exp2());
            raw.costs[j] = if k >= 0 {
                Frac::new((c as i128) << k as u32, 1).unwrap()
            } else {
                Frac::new(c as i128, 1i128 << (-k) as u32).unwrap()
            };
        }
        assert_matches_reference(&model, &raw, 1e-7, "wide costs");
    }

    /// Warm starts across rescaled models: a basis captured on the base
    /// model must never corrupt a solve of the rescaled twin — the
    /// scaling-fingerprint guard either certifies reuse or falls back to
    /// a cold solve, and in both cases the result matches. A follow-up
    /// rhs perturbation then chains a warm solve *within* the rescaled
    /// space.
    #[test]
    fn warm_across_rescale_certifies_or_falls_back(
        vars in proptest::collection::vec((1i64..=8, -4i64..=4), 2..=5),
        rows in proptest::collection::vec(
            (
                proptest::collection::vec((0usize..8, -3i64..=3), 1..=4),
                0u32..3,
                -6i64..=12,
            ),
            1..=4,
        ),
        rpow in proptest::collection::vec(-30i32..=30, 4),
        cpow in proptest::collection::vec(-30i32..=30, 5),
        bump in -2i64..=2,
    ) {
        let (base, _) = build_pair(&vars, &rows);
        let mut basis: Option<LpWarmStart> = None;
        if let Ok((_, b)) = base.solve_lp_warm(None) {
            basis = b;
        }
        let mut scaled = base.equivalently_rescaled(&rpow[..rows.len()], &cpow[..vars.len()]);
        let warm = scaled.solve_lp_warm(basis.as_ref());
        let cold = scaled.solve_lp();
        let chained = match (warm, cold) {
            (Ok((w, b)), Ok(c)) => {
                prop_assert!(
                    (w.objective - c.objective).abs() <= 1e-6 * (1.0 + c.objective.abs()),
                    "cross-scale warm {} vs cold {}",
                    w.objective,
                    c.objective
                );
                b
            }
            (Err(SolverError::Infeasible), Err(SolverError::Infeasible)) => None,
            (w, c) => panic!("cross-scale warm {w:?} vs cold {c:?}"),
        };
        // Chain link inside the rescaled space: rhs edits keep the scaling
        // fingerprint, so this either reuses the basis or repairs it.
        let row0 = scaled.constr(0);
        let scaled_rhs = rows[0].2 as f64 * (rpow[0] as f64).exp2();
        scaled.set_rhs(row0, scaled_rhs + bump as f64 * (rpow[0] as f64).exp2());
        let warm2 = scaled.solve_lp_warm(chained.as_ref());
        let cold2 = scaled.solve_lp();
        match (warm2, cold2) {
            (Ok((w, _)), Ok(c)) => {
                prop_assert!(
                    (w.objective - c.objective).abs() <= 1e-6 * (1.0 + c.objective.abs()),
                    "in-scale warm {} vs cold {}\nvars {vars:?} rows {rows:?} rpow {rpow:?} cpow {cpow:?} bump {bump}",
                    w.objective,
                    c.objective
                );
            }
            (Err(SolverError::Infeasible), Err(SolverError::Infeasible)) => {}
            (w, c) => panic!("in-scale warm {w:?} vs cold {c:?}"),
        }
    }
}

// ---------------------------------------------------------------------------
// Deterministic regressions.
// ---------------------------------------------------------------------------

/// Bound snapping at 1e8 scale: a variable optimal *at* its huge bound is
/// returned exactly on it, while an optimum thousands of units inside the
/// bound (but tiny relative to it) must not be snapped onto it.
#[test]
fn huge_bound_snapping_is_relative_but_not_greedy() {
    // max x, x <= 1e8 (the box) → exactly 1e8.
    let mut at = Model::new(Sense::Maximize);
    let x = at.add_var("x", VarKind::Continuous, 0.0, 1e8, 1.0);
    let y = at.add_var("y", VarKind::Continuous, 0.0, 1.0, 0.0);
    at.add_constr(vec![(x, 1.0), (y, 1.0)], Cmp::Ge, 1.0);
    let s = at.solve_lp().unwrap();
    assert_eq!(s.value(x), 1e8, "at-bound value must snap exactly");

    // max x, x <= 1e8 - 5000 via a row: interior relative to the 1e8 box
    // (5000 ≫ snap epsilon ≈ 0.1), must NOT snap to the box bound.
    let mut inside = Model::new(Sense::Maximize);
    let x = inside.add_var("x", VarKind::Continuous, 0.0, 1e8, 1.0);
    inside.add_constr(vec![(x, 1.0)], Cmp::Le, 1e8 - 5000.0);
    let s = inside.solve_lp().unwrap();
    assert!(
        (s.value(x) - (1e8 - 5000.0)).abs() < 1.0,
        "interior optimum {} must stay off the 1e8 bound",
        s.value(x)
    );
    assert!(s.value(x) < 1e8 - 4000.0, "must not snap onto the box");
}

/// The certification path rejects nothing on a clean model but the typed
/// error carries measured data when triggered; here we only pin the happy
/// path — a well-conditioned solve stays `Optimal` and feasibility holds
/// under the model's own scale-relative checker.
#[test]
fn certified_solution_passes_relative_feasibility_check() {
    let mut m = Model::new(Sense::Minimize);
    let x = m.add_var("x", VarKind::Continuous, 0.0, 1e9, 3.0);
    let y = m.add_var("y", VarKind::Continuous, 0.0, 1e9, 5.0);
    m.add_constr(vec![(x, 1.0), (y, 2.0)], Cmp::Ge, 1e8);
    m.add_constr(vec![(x, 3.0), (y, 1.0)], Cmp::Ge, 2e8);
    let s = m.solve_lp().unwrap();
    m.check_feasible(&s.values, milp::FEAS_TOL)
        .expect("certified optimum must satisfy the relative contract");
    // Exact optimum: intersection of the two rows → x = 6e7, y = 2e7.
    assert!((s.objective - (3.0 * 6e7 + 5.0 * 2e7)).abs() <= 1.0);
}
