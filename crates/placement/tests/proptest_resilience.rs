//! Differential proof of the resilience scorer's exactness contract:
//! on unrouted chains, [`placement::resilience::score_ensemble`] —
//! walking every scenario through ONE warm `DeltaInstance` chain with
//! incremental hit counters and fail/restore resets — must be *bitwise*
//! equal to [`placement::resilience::score_ensemble_cold`], which builds
//! an independent `PpmInstance` per scenario from scratch. Coverage
//! fractions compare by `to_bits`, live device counts exactly; and the
//! chain must hand back its entry state (volumes and failure set) so a
//! second campaign over the same chain reproduces the first.
//!
//! The scenarios come from the real `popgen::FailureModel` sampler (SRLG
//! groups + independent faults + churn + demand perturbation), so the
//! property also exercises the sampler's output contract (sorted failed
//! links, ascending demand factors) end to end.

use placement::passive::greedy_static;
use placement::resilience::{score_ensemble, score_ensemble_cold};
use placement::{DeltaInstance, PpmInstance};
use popgen::{DynamicSpec, FailureModel, FailureSpec, FamilySpec, GravitySpec, Pop};
use proptest::prelude::*;

/// Strategy: a seeded family instance plus a failure-model configuration
/// and a sampling seed — small topologies, ensembles of up to 24
/// scenarios, failure rates spanning calm to catastrophic.
#[allow(clippy::type_complexity)]
fn cases() -> impl Strategy<Value = ((FamilySpec, u64), (FailureSpec, bool, u64, usize), u32, u32)>
{
    let family = (0usize..3, 6usize..=10, 3usize..=5, 0u64..500).prop_map(
        |(fam, routers, endpoints, seed)| {
            let name = ["waxman", "ba", "hier"][fam];
            let spec = FamilySpec::canonical(name, routers, endpoints).expect("known family");
            (spec, seed)
        },
    );
    let failure = (
        (1usize..=6, 0.0f64..=0.5, 0.0f64..=0.3, 0.0f64..=0.2),
        (0u32..2, 0u64..1000, 1usize..=24),
    )
        .prop_map(
            |((groups, group_rate, link_rate, churn), (dynamic, seed, count))| {
                let dynamic = dynamic == 1;
                let spec = FailureSpec {
                    groups,
                    group_rate,
                    link_rate,
                    churn,
                };
                spec.validate().expect("strategy emits valid specs");
                (spec, dynamic, seed, count)
            },
        );
    (family, failure, 50u32..=100, 0u32..=2)
}

fn build(spec: &FamilySpec, seed: u64) -> (Pop, PpmInstance) {
    let pop = spec.build(seed).expect("strategy emits valid specs");
    let ts = GravitySpec::default().generate(&pop, seed);
    let inst = PpmInstance::from_traffic(&pop.graph, &ts);
    (pop, inst)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The warm chain scores every scenario bitwise-identically to the
    /// cold per-scenario rebuild — coverage AND device counts — and the
    /// chain comes back in its entry state.
    #[test]
    fn warm_chain_equals_cold_rebuild(case in cases()) {
        let ((family, inst_seed), (fspec, dynamic, sample_seed, count), k_pct, base_fails) = case;
        let (pop, inst) = build(&family, inst_seed);
        let model = FailureModel::try_new(&pop, &fspec).expect("valid spec");
        let dspec = DynamicSpec::default();
        let scenarios = model
            .sample_scenarios(
                inst.traffics.len(),
                if dynamic { Some(&dspec) } else { None },
                count,
                sample_seed,
            )
            .expect("valid sampling request");

        // A realistic placement: the deterministic greedy's answer at a
        // random target (fall back to the two heaviest links when the
        // target is unreachable on this instance).
        let k = k_pct as f64 / 100.0;
        let placement: Vec<usize> = match greedy_static(&inst, k) {
            Some(sol) => sol.edges,
            None => vec![0, inst.num_edges / 2],
        };

        let mut delta = DeltaInstance::from_instance(&inst);
        // Up to two links already failed on the chain at entry: scenario
        // failures must layer on top without double-faulting them.
        let base_disabled: Vec<usize> = (0..base_fails as usize)
            .map(|i| (i * 7 + 1) % inst.num_edges)
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        for &e in &base_disabled {
            delta.fail_link(e);
        }

        let warm = score_ensemble(&mut delta, &placement, &scenarios)
            .expect("validated inputs");
        let cold = score_ensemble_cold(&inst, &base_disabled, &placement, &scenarios)
            .expect("validated inputs");

        prop_assert_eq!(warm.per_scenario.len(), cold.per_scenario.len());
        for (i, (w, c)) in warm.per_scenario.iter().zip(&cold.per_scenario).enumerate() {
            prop_assert_eq!(
                w.coverage.to_bits(), c.coverage.to_bits(),
                "scenario {} coverage: warm {} vs cold {} ({} seed {} sample {})",
                i, w.coverage, c.coverage, family, inst_seed, sample_seed
            );
            prop_assert_eq!(
                w.live_devices, c.live_devices,
                "scenario {} device count ({} seed {})", i, family, inst_seed
            );
        }
        prop_assert_eq!(warm.expected_coverage.to_bits(), cold.expected_coverage.to_bits());
        prop_assert_eq!(warm.p99_tail.to_bits(), cold.p99_tail.to_bits());
        prop_assert_eq!(warm.worst_case.to_bits(), cold.worst_case.to_bits());

        // Entry state restored: same failure set, same volume bits.
        prop_assert_eq!(delta.disabled(), base_disabled.as_slice());
        for (t, &(v, _)) in inst.traffics.iter().enumerate() {
            prop_assert_eq!(delta.demand(t).to_bits(), v.to_bits(), "traffic {}", t);
        }

        // And the reset is real: a second campaign over the SAME chain
        // reproduces the first bit for bit.
        let again = score_ensemble(&mut delta, &placement, &scenarios)
            .expect("validated inputs");
        for (w, a) in warm.per_scenario.iter().zip(&again.per_scenario) {
            prop_assert_eq!(w.coverage.to_bits(), a.coverage.to_bits());
            prop_assert_eq!(w.live_devices, a.live_devices);
        }
    }
}
