//! Differential testing over the open instance space: random family
//! instances (Waxman / Barabási–Albert / hierarchical ISP) with gravity
//! traffic, checked against the `PPM(k)` coverage invariant and the
//! greedy-vs-exact ordering — the bnb-vs-exhaustive pattern of
//! `coin-select`, applied to placement. Complements
//! `proptest_passive.rs`, which draws abstract supports; here the
//! instances come from *routed topologies*, end to end.

use placement::instance::PpmInstance;
use placement::passive::{greedy_static, solve_ppm_exact, ExactOptions};
use popgen::{FamilySpec, GravitySpec, Pop, TrafficSet};
use proptest::prelude::*;

/// Strategy: a seeded random family instance, small enough that the exact
/// ILP stays cheap across 256 cases.
fn family_instances() -> impl Strategy<Value = (FamilySpec, u64)> {
    (
        0usize..3,
        6usize..=12,
        3usize..=6,
        0.25f64..=1.0,
        0u64..1000,
    )
        .prop_map(|(fam, routers, endpoints, density, seed)| {
            let name = ["waxman", "ba", "hier"][fam];
            let mut spec = FamilySpec::canonical(name, routers, endpoints).expect("known family");
            spec.density = density;
            (spec, seed)
        })
}

fn build(spec: &FamilySpec, seed: u64) -> (Pop, TrafficSet, PpmInstance) {
    let pop = spec.build(seed).expect("strategy emits valid specs");
    let ts = GravitySpec::default().generate(&pop, seed);
    let inst = PpmInstance::from_traffic(&pop.graph, &ts);
    (pop, ts, inst)
}

/// Volume of the traffics whose routed path crosses at least one tapped
/// link — recomputed from the raw paths, independently of
/// `PpmInstance::coverage`, so the invariant check shares no code with
/// the solvers it polices.
fn covered_volume_from_paths(ts: &TrafficSet, tapped: &[usize]) -> f64 {
    let mut is_tapped = vec![false; tapped.iter().max().map_or(0, |&e| e + 1)];
    for &e in tapped {
        is_tapped[e] = true;
    }
    ts.traffics
        .iter()
        .filter(|t| {
            t.path
                .edges()
                .iter()
                .any(|e| is_tapped.get(e.index()).copied().unwrap_or(false))
        })
        .map(|t| t.volume)
        .sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Coverage invariant: in any `PPM(k)` solution on a random family
    /// instance, the flows counted as monitored each cross a tapped link,
    /// and their volume meets the target — verified from the routed paths
    /// themselves. At `k = 1` this means *every* flow crosses a tap.
    #[test]
    fn solutions_cover_k_of_the_volume(case in family_instances(), k_pct in 50u32..=100) {
        let (spec, seed) = case;
        let (_pop, ts, inst) = build(&spec, seed);
        let k = k_pct as f64 / 100.0;
        let total = ts.total_volume();

        let g = greedy_static(&inst, k).expect("every family flow crosses >= 1 link");
        let covered = covered_volume_from_paths(&ts, &g.edges);
        prop_assert!(
            covered + 1e-9 >= k * total,
            "greedy taps {:?} cover {covered} < k*V = {} on {spec} seed {seed}",
            g.edges, k * total
        );

        let e = solve_ppm_exact(&inst, k, &ExactOptions::default()).expect("feasible");
        let covered = covered_volume_from_paths(&ts, &e.edges);
        prop_assert!(
            covered + 1e-9 >= k * total,
            "exact taps {:?} cover {covered} < k*V = {} on {spec} seed {seed}",
            e.edges, k * total
        );

        if k_pct == 100 {
            let tapped: Vec<bool> = {
                let mut m = vec![false; inst.num_edges];
                for &edge in &e.edges { m[edge] = true; }
                m
            };
            for t in &ts.traffics {
                prop_assert!(
                    t.path.edges().iter().any(|edge| tapped[edge.index()]),
                    "at k = 1 every routed flow must cross a tapped link ({spec} seed {seed})"
                );
            }
        }
    }

    /// Ordering invariant: greedy device count >= exact device count,
    /// never lower (the coin-select greedy-vs-bnb pattern).
    #[test]
    fn greedy_never_beats_exact(case in family_instances(), k_pct in 50u32..=100) {
        let (spec, seed) = case;
        let (_pop, _ts, inst) = build(&spec, seed);
        let k = k_pct as f64 / 100.0;
        let g = greedy_static(&inst, k).expect("coverable");
        let e = solve_ppm_exact(&inst, k, &ExactOptions::default()).expect("feasible");
        prop_assert!(e.proven_optimal, "the exact ILP must close on these small instances");
        prop_assert!(
            e.device_count() <= g.device_count(),
            "exact {} beats greedy {} the wrong way on {spec} seed {seed}",
            e.device_count(), g.device_count()
        );
        prop_assert!(inst.is_feasible(&g.edges, k));
        prop_assert!(inst.is_feasible(&e.edges, k));
    }
}
