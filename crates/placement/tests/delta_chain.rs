//! Chain-equals-fresh regression: a [`DeltaInstance`] walking a sweep
//! grid (warm-started solves, one model per structure) must reproduce the
//! device counts of the one-shot solvers on fresh instances, point for
//! point, on the seed-0 state of each experiment grid.
//!
//! This is the correctness half of the warm-start layer's contract (the
//! speed half lives in `BENCH_popmon.json`): the chains reuse *bases*,
//! never answers, so every proven-optimal count must agree with the
//! corresponding `solve_ppm_exact` / `solve_incremental` / `solve_budget`
//! call scenarios.rs used to make per grid point.

use placement::delta::DeltaInstance;
use placement::instance::PpmInstance;
use placement::passive::{solve_budget, solve_incremental, solve_ppm_exact, ExactOptions};
use popgen::{PopSpec, TrafficSpec};

fn seed0_instance() -> PpmInstance {
    let pop = PopSpec::paper_10().build();
    let ts = TrafficSpec::default().generate(&pop, 0);
    PpmInstance::from_traffic(&pop.graph, &ts)
}

/// The fig7 k-grid: chained exact solves vs. fresh `solve_ppm_exact`.
#[test]
fn fig7_grid_chain_matches_fresh() {
    let inst = seed0_instance();
    let opts = ExactOptions::default();
    let mut chain = DeltaInstance::from_instance(&inst);
    for k_pct in [75u32, 80, 85, 90, 95, 100] {
        let k = k_pct as f64 / 100.0;
        let chained = chain.solve_exact(k, &opts).expect("coverable");
        let fresh = solve_ppm_exact(&inst, k, &opts).expect("coverable");
        assert_eq!(
            chained.device_count(),
            fresh.device_count(),
            "chained exact diverged from fresh at k = {k_pct}%"
        );
        assert!(chained.proven_optimal && fresh.proven_optimal);
        assert!(inst.is_feasible(&chained.edges, k));
    }
}

/// The xp_incremental upgrade grid: a frozen `PPM(0.8)` base, chained
/// re-targets vs. fresh `solve_incremental` at every higher k.
#[test]
fn incremental_grid_chain_matches_fresh() {
    let inst = seed0_instance();
    let opts = ExactOptions::default();
    let base = solve_ppm_exact(&inst, 0.8, &opts).expect("PPM(0.8) feasible");

    let mut chain = DeltaInstance::from_instance(&inst);
    chain.set_installed(&base.edges);
    for k_pct in [85u32, 90, 95, 100] {
        let k = k_pct as f64 / 100.0;
        let chained = chain.solve_exact(k, &opts).expect("feasible");
        let fresh = solve_incremental(&inst, k, &base.edges, &opts).expect("feasible");
        assert_eq!(
            chained.device_count(),
            fresh.device_count(),
            "chained incremental diverged from fresh at k = {k_pct}%"
        );
        for &e in &base.edges {
            assert!(chained.edges.contains(&e), "installed device {e} must stay");
        }
        assert!(inst.is_feasible(&chained.edges, k));
    }
}

/// The xp_incremental buy-devices grid: chained budget solves vs. fresh
/// `solve_budget` over the extras grid on top of the `PPM(0.8)` base.
#[test]
fn budget_grid_chain_matches_fresh() {
    let inst = seed0_instance();
    let opts = ExactOptions::default();
    let base = solve_ppm_exact(&inst, 0.8, &opts).expect("PPM(0.8) feasible");

    let mut chain = DeltaInstance::from_instance(&inst);
    chain.set_installed(&base.edges);
    for extra in [1usize, 2, 3, 4, 5] {
        let chained = chain.solve_budget(extra, &opts);
        let fresh = solve_budget(&inst, extra, &base.edges, &opts);
        assert!(
            (chained.coverage - fresh.coverage).abs() < 1e-6,
            "chained budget diverged from fresh at extra = {extra}: {} vs {}",
            chained.coverage,
            fresh.coverage
        );
        assert!(chained.proven_optimal && fresh.proven_optimal);
    }
}
