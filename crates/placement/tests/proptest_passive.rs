//! Property tests for passive placement: the greedy and exact solvers
//! must *agree* on small random instances — same feasibility verdict,
//! exact never beaten, greedy sandwiched by the Slavík bound, and the two
//! exact solvers (LP 2 branch & bound vs. the MECF flow-bound branch &
//! bound) returning the same optimum. Runs alongside the substrate suites
//! (`netgraph/tests/proptest_paths.rs`, `mcmf/tests/proptest_flow.rs`).

use placement::instance::PpmInstance;
use placement::passive::{
    brute_force_ppm, greedy_adaptive, greedy_static, solve_ppm_exact, solve_ppm_mecf_bb,
    ExactOptions,
};
use placement::setcover::slavik_bound;
use proptest::prelude::*;

/// Strategy: a random small PPM instance (≤ 8 edges, ≤ 10 traffics, every
/// traffic crossing 1–3 edges).
fn ppm_instances() -> impl Strategy<Value = PpmInstance> {
    (2usize..=8).prop_flat_map(|ne| {
        let traffic = (1.0f64..10.0, proptest::collection::vec(0..ne, 1..=3));
        proptest::collection::vec(traffic, 1..=10).prop_map(move |ts| PpmInstance::new(ne, ts))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Greedy and exact agree on feasibility, and when both find a
    /// solution the exact count is a true lower bound with greedy inside
    /// the Slavík approximation envelope.
    #[test]
    fn greedy_and_exact_agree(inst in ppm_instances(), k_pct in 10u32..=100) {
        let k = k_pct as f64 / 100.0;
        let exact = solve_ppm_exact(&inst, k, &ExactOptions::default());
        let greedy = greedy_adaptive(&inst, k);
        match (exact, greedy) {
            (Some(e), Some(g)) => {
                prop_assert!(inst.is_feasible(&e.edges, k));
                prop_assert!(inst.is_feasible(&g.edges, k));
                prop_assert!(
                    e.device_count() <= g.device_count(),
                    "exact {} must not exceed greedy {}",
                    e.device_count(), g.device_count()
                );
                let bound = slavik_bound(inst.traffics.len()).max(1.0);
                prop_assert!(
                    g.device_count() as f64 <= bound * e.device_count() as f64 + 1e-9,
                    "greedy {} vs exact {} breaks the Slavik bound {}",
                    g.device_count(), e.device_count(), bound
                );
            }
            (None, None) => {} // both consider the target unreachable
            (e, g) => prop_assert!(
                false,
                "feasibility disagreement: exact {:?} vs greedy {:?}",
                e.map(|s| s.edges), g.map(|s| s.edges)
            ),
        }
    }

    /// The static greedy variant is also feasible whenever it answers,
    /// and never beats the exact optimum.
    #[test]
    fn greedy_static_is_sound(inst in ppm_instances(), k_pct in 10u32..=100) {
        let k = k_pct as f64 / 100.0;
        if let Some(g) = greedy_static(&inst, k) {
            prop_assert!(inst.is_feasible(&g.edges, k));
            let e = solve_ppm_exact(&inst, k, &ExactOptions::default())
                .expect("greedy's witness proves feasibility");
            prop_assert!(e.device_count() <= g.device_count());
        }
    }

    /// Both exact solvers and the brute-force oracle agree on the
    /// optimal device count.
    #[test]
    fn exact_solvers_agree_with_brute_force(inst in ppm_instances(), k_pct in 10u32..=100) {
        let k = k_pct as f64 / 100.0;
        let opts = ExactOptions::default();
        let lp2 = solve_ppm_exact(&inst, k, &opts);
        let mecf = solve_ppm_mecf_bb(&inst, k, &opts);
        let brute = brute_force_ppm(&inst, k);
        match (lp2, mecf, brute) {
            (Some(a), Some(b), Some(c)) => {
                prop_assert!(a.proven_optimal && b.proven_optimal);
                prop_assert_eq!(a.device_count(), c.device_count());
                prop_assert_eq!(b.device_count(), c.device_count());
            }
            (None, None, None) => {}
            (a, b, c) => prop_assert!(
                false,
                "solver feasibility disagreement: lp2 {:?} mecf {:?} brute {:?}",
                a.map(|s| s.edges), b.map(|s| s.edges), c.map(|s| s.edges)
            ),
        }
    }
}
