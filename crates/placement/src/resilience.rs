//! Monte-Carlo resilience campaigns: scoring a fixed placement over a
//! sampled failure ensemble through one warm delta chain.
//!
//! The paper places devices against a single static topology and traffic
//! matrix; a production fleet sees correlated link failures (SRLGs) and
//! demand churn. This module evaluates how a placement *holds up*: each
//! scenario of a [`popgen::failure`] ensemble is walked through a
//! [`DeltaInstance`] chain — [`DeltaInstance::fail_link`] per failed
//! link, [`DeltaInstance::scale_demand`] per demand factor — scored, and
//! rolled back ([`DeltaInstance::restore_link`] +
//! [`DeltaInstance::set_demand`] with the recorded base volume, an exact
//! float reset), so a thousand scenarios cost incremental updates, never
//! a cold rebuild.
//!
//! **Exactness contract** (proven by `tests/proptest_resilience.rs`): on
//! unrouted chains, [`score_ensemble`] is *bitwise* equal to
//! [`score_ensemble_cold`], which builds an independent [`PpmInstance`]
//! per scenario. The warm path tracks, per traffic, how many live placed
//! devices sit on its support (an integer — exact under increments), and
//! recomputes the covered/total volume sums in original traffic order,
//! the same float summation sequence as [`PpmInstance::coverage`] /
//! [`PpmInstance::total_volume`]. Scenario volumes are `base * factor`
//! in both paths, and the reset restores the recorded base bits.
//!
//! On *routed* chains failures re-route the crossing traffics, so
//! supports change and incremental counters do not apply: the scorer
//! falls back to materializing the instance per scenario (same chain,
//! same reset contract, documented slow path).
//!
//! [`greedy_expected`] is the stochastic-aware counterpart of the
//! paper's greedy: it picks devices maximizing *expected coverage over
//! the sampled ensemble* — a device on a frequently-failing link earns
//! its keep only in the scenarios where it survives — for head-to-head
//! comparison against the deterministic optimum (the `xp_resilience`
//! sweep).

use popgen::failure::Scenario;

use crate::delta::DeltaInstance;
use crate::instance::PpmInstance;
use crate::solve::PlacementError;

/// One scenario's outcome for the scored placement.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioScore {
    /// Covered fraction of the scenario's total volume (`1.0` when the
    /// scenario has no volume at all).
    pub coverage: f64,
    /// Placed devices still alive (not on a failed or disabled link).
    pub live_devices: usize,
}

/// Ensemble-level summary of a placement under failure.
#[derive(Debug, Clone, PartialEq)]
pub struct EnsembleScore {
    /// Mean covered fraction over the ensemble, in scenario order.
    pub expected_coverage: f64,
    /// The 1%-tail coverage: with scenarios sorted by coverage ascending,
    /// the value at index `⌊(n − 1) / 100⌋` (the 10th-worst of 1000; the
    /// worst case for ensembles under 101 scenarios).
    pub p99_tail: f64,
    /// The minimum coverage over the ensemble.
    pub worst_case: f64,
    /// Per-scenario outcomes, in ensemble order.
    pub per_scenario: Vec<ScenarioScore>,
}

/// Validates ensemble inputs against the instance dimensions: placement
/// edges in range; per scenario, failed links strictly ascending and in
/// range, demand factors strictly ascending by traffic, in range, finite
/// and non-negative. Nothing is mutated on rejection.
fn validate(
    num_edges: usize,
    traffic_count: usize,
    placement: &[usize],
    scenarios: &[Scenario],
) -> Result<(), PlacementError> {
    if scenarios.is_empty() {
        return Err(PlacementError::new(
            "scenarios",
            "need at least one scenario".to_string(),
        ));
    }
    if let Some(&e) = placement.iter().find(|&&e| e >= num_edges) {
        return Err(PlacementError::new(
            "placement",
            format!("link {e} out of range (instance has {num_edges} links)"),
        ));
    }
    for (i, s) in scenarios.iter().enumerate() {
        for (j, &e) in s.failed_links.iter().enumerate() {
            if e >= num_edges {
                return Err(PlacementError::new(
                    "scenario",
                    format!("scenario {i}: link {e} out of range (instance has {num_edges} links)"),
                ));
            }
            if j > 0 && s.failed_links[j - 1] >= e {
                return Err(PlacementError::new(
                    "scenario",
                    format!("scenario {i}: failed links must be strictly ascending"),
                ));
            }
        }
        for (j, &(t, f)) in s.demand_factors.iter().enumerate() {
            if t >= traffic_count {
                return Err(PlacementError::new(
                    "scenario",
                    format!(
                        "scenario {i}: traffic {t} out of range (instance has {traffic_count} traffics)"
                    ),
                ));
            }
            if j > 0 && s.demand_factors[j - 1].0 >= t {
                return Err(PlacementError::new(
                    "scenario",
                    format!("scenario {i}: demand factors must be strictly ascending by traffic"),
                ));
            }
            if !f.is_finite() || f < 0.0 {
                return Err(PlacementError::new(
                    "scenario",
                    format!("scenario {i}: factor must be finite and >= 0, got {f}"),
                ));
            }
        }
    }
    Ok(())
}

/// Folds per-scenario outcomes into the ensemble summary (see the field
/// docs for the exact definitions). `per` must be non-empty.
fn summarize(per: Vec<ScenarioScore>) -> EnsembleScore {
    let n = per.len();
    let expected = per.iter().map(|p| p.coverage).sum::<f64>() / n as f64;
    let worst = per.iter().map(|p| p.coverage).fold(f64::INFINITY, f64::min);
    let mut sorted: Vec<f64> = per.iter().map(|p| p.coverage).collect();
    sorted.sort_by(|a, b| a.total_cmp(b));
    EnsembleScore {
        expected_coverage: expected,
        p99_tail: sorted[(n - 1) / 100],
        worst_case: worst,
        per_scenario: per,
    }
}

/// The covered fraction: `covered / total`, or `1.0` for an all-zero
/// scenario (nothing to cover).
fn fraction(covered: f64, total: f64) -> f64 {
    if total > 0.0 {
        covered / total
    } else {
        1.0
    }
}

/// Scores a fixed `placement` over a failure ensemble through `delta`'s
/// warm chain, leaving the chain in its entry state (same failures, same
/// volumes — bit-exact) when it returns.
///
/// Links already failed on the chain stay failed in every scenario (a
/// scenario re-failing one is a no-op, not a double fault), and devices
/// on them are dead throughout. On unrouted chains the result is bitwise
/// equal to [`score_ensemble_cold`]; routed chains take the documented
/// materializing slow path.
pub fn score_ensemble(
    delta: &mut DeltaInstance,
    placement: &[usize],
    scenarios: &[Scenario],
) -> Result<EnsembleScore, PlacementError> {
    validate(
        delta.num_edges(),
        delta.traffic_count(),
        placement,
        scenarios,
    )?;
    let mut placed: Vec<usize> = placement.to_vec();
    placed.sort_unstable();
    placed.dedup();
    if delta.is_routed() {
        return Ok(score_routed(delta, &placed, scenarios));
    }

    let base = delta.instance();
    let num_edges = base.num_edges;
    let t_count = base.traffics.len();
    let mut placed_mask = vec![false; num_edges];
    for &e in &placed {
        placed_mask[e] = true;
    }
    let mut base_disabled_mask = vec![false; num_edges];
    for &e in delta.disabled() {
        base_disabled_mask[e] = true;
    }
    // Per traffic: how many placed, currently-live devices sit on its
    // support. Integer, so incremental fail/restore updates are exact.
    let mut hits = vec![0u32; t_count];
    // Per placed edge: the traffics whose support contains it.
    let mut touch: Vec<Vec<u32>> = vec![Vec::new(); num_edges];
    for (t, (_, support)) in base.traffics.iter().enumerate() {
        for &e in support {
            if placed_mask[e] {
                touch[e].push(t as u32);
                if !base_disabled_mask[e] {
                    hits[t] += 1;
                }
            }
        }
    }
    let live_base = placed.iter().filter(|&&e| !base_disabled_mask[e]).count();
    // Current volumes, mirroring the chain's own state.
    let mut vol: Vec<f64> = base.traffics.iter().map(|&(v, _)| v).collect();

    let mut per = Vec::with_capacity(scenarios.len());
    let mut newly_failed: Vec<usize> = Vec::new();
    for s in scenarios {
        for &(t, f) in &s.demand_factors {
            delta.scale_demand(t, f);
            // The same multiply the chain just did — and the same one the
            // cold path does — so the bits agree.
            vol[t] *= f;
        }
        newly_failed.clear();
        let mut dead_placed = 0usize;
        for &e in &s.failed_links {
            if base_disabled_mask[e] {
                continue; // already failed on the chain: no double fault
            }
            let rerouted = delta.fail_link(e);
            debug_assert_eq!(rerouted, 0, "unrouted chains never re-route");
            newly_failed.push(e);
            if placed_mask[e] {
                dead_placed += 1;
                for &t in &touch[e] {
                    hits[t as usize] -= 1;
                }
            }
        }
        // Covered/total volume sums in original traffic order — the exact
        // float sequence of `PpmInstance::coverage` / `total_volume`,
        // including `Sum`'s `-0.0` starting point (an empty covered set
        // must yield the same `-0.0` the cold path produces).
        let mut covered = -0.0f64;
        let mut total = -0.0f64;
        for (t, &v) in vol.iter().enumerate() {
            total += v;
            if hits[t] > 0 {
                covered += v;
            }
        }
        per.push(ScenarioScore {
            coverage: fraction(covered, total),
            live_devices: live_base - dead_placed,
        });
        // Roll back: restores re-enable the links, set_demand writes the
        // recorded base volume back bit-exactly.
        for &e in &newly_failed {
            let rerouted = delta.restore_link(e);
            debug_assert_eq!(rerouted, 0, "unrouted chains never re-route");
            if placed_mask[e] {
                for &t in &touch[e] {
                    hits[t as usize] += 1;
                }
            }
        }
        for &(t, _) in &s.demand_factors {
            let v = base.traffics[t].0;
            delta.set_demand(t, v);
            vol[t] = v;
        }
    }
    Ok(summarize(per))
}

/// The routed slow path: mutate, materialize, score, roll back. The
/// chain's delta-aware re-routing still makes this cheaper than cold
/// rebuilds (only crossing traffics re-route on each failure), but the
/// incremental counters of the unrouted path do not apply once supports
/// move.
fn score_routed(
    delta: &mut DeltaInstance,
    placed: &[usize],
    scenarios: &[Scenario],
) -> EnsembleScore {
    let base_volumes: Vec<f64> = (0..delta.traffic_count())
        .map(|t| delta.demand(t))
        .collect();
    let base_disabled: Vec<usize> = delta.disabled().to_vec();
    let mut per = Vec::with_capacity(scenarios.len());
    let mut newly_failed: Vec<usize> = Vec::new();
    for s in scenarios {
        for &(t, f) in &s.demand_factors {
            delta.scale_demand(t, f);
        }
        newly_failed.clear();
        for &e in &s.failed_links {
            if base_disabled.binary_search(&e).is_ok() {
                continue;
            }
            delta.fail_link(e);
            newly_failed.push(e);
        }
        let inst = delta.instance();
        let live: Vec<usize> = placed
            .iter()
            .copied()
            .filter(|e| delta.disabled().binary_search(e).is_err())
            .collect();
        per.push(ScenarioScore {
            coverage: fraction(inst.coverage(&live), inst.total_volume()),
            live_devices: live.len(),
        });
        for &e in &newly_failed {
            delta.restore_link(e);
        }
        for &(t, _) in &s.demand_factors {
            delta.set_demand(t, base_volumes[t]);
        }
    }
    summarize(per)
}

/// The cold-rebuild reference: an independent [`PpmInstance`] per
/// scenario, no chain, no incremental state. This is the differential
/// oracle for [`score_ensemble`] on unrouted chains (bitwise-equal
/// scores) and the frozen baseline the `resilience_ensemble_1k` bench
/// stage is measured against. `base_disabled` must be sorted.
pub fn score_ensemble_cold(
    base: &PpmInstance,
    base_disabled: &[usize],
    placement: &[usize],
    scenarios: &[Scenario],
) -> Result<EnsembleScore, PlacementError> {
    validate(base.num_edges, base.traffics.len(), placement, scenarios)?;
    let mut placed: Vec<usize> = placement.to_vec();
    placed.sort_unstable();
    placed.dedup();
    let mut per = Vec::with_capacity(scenarios.len());
    for s in scenarios {
        let mut traffics = base.traffics.clone();
        for &(t, f) in &s.demand_factors {
            traffics[t].0 *= f;
        }
        let inst = PpmInstance::new(base.num_edges, traffics);
        let live: Vec<usize> = placed
            .iter()
            .copied()
            .filter(|e| {
                base_disabled.binary_search(e).is_err() && s.failed_links.binary_search(e).is_err()
            })
            .collect();
        per.push(ScenarioScore {
            coverage: fraction(inst.coverage(&live), inst.total_volume()),
            live_devices: live.len(),
        });
    }
    Ok(summarize(per))
}

/// Stochastic-aware greedy: picks up to `budget` devices maximizing the
/// summed covered *fraction* over the sampled ensemble (equivalently, the
/// expected coverage), accounting for device death — a device on link `e`
/// contributes nothing in scenarios where `e` fails. Ties break toward
/// the smaller link index; the build stops early when no device adds
/// coverage. Returns the chosen links, ascending.
///
/// This is the head-to-head rival of the deterministic optimum in the
/// `xp_resilience` sweep: on a static instance (empty scenarios'
/// failures) it degenerates to the classic greedy ordering.
pub fn greedy_expected(
    base: &PpmInstance,
    base_disabled: &[usize],
    scenarios: &[Scenario],
    budget: usize,
) -> Result<Vec<usize>, PlacementError> {
    validate(base.num_edges, base.traffics.len(), &[], scenarios)?;
    let num_edges = base.num_edges;
    let t_count = base.traffics.len();
    let s_count = scenarios.len();

    // Dense per-scenario volumes and totals (sweep-scale ensembles only;
    // the scorer above is the streaming path).
    let base_vol: Vec<f64> = base.traffics.iter().map(|&(v, _)| v).collect();
    let mut vols: Vec<Vec<f64>> = Vec::with_capacity(s_count);
    let mut totals: Vec<f64> = Vec::with_capacity(s_count);
    let mut dead: Vec<Vec<bool>> = Vec::with_capacity(s_count);
    for s in scenarios {
        let mut v = base_vol.clone();
        for &(t, f) in &s.demand_factors {
            v[t] *= f;
        }
        totals.push(v.iter().sum());
        vols.push(v);
        let mut d = vec![false; num_edges];
        for &e in base_disabled.iter().chain(&s.failed_links) {
            if e < num_edges {
                d[e] = true;
            }
        }
        dead.push(d);
    }
    let mut touch: Vec<Vec<u32>> = vec![Vec::new(); num_edges];
    for (t, (_, support)) in base.traffics.iter().enumerate() {
        for &e in support {
            touch[e].push(t as u32);
        }
    }

    let mut covered = vec![false; s_count * t_count];
    let mut chosen_mask = vec![false; num_edges];
    let mut chosen = Vec::new();
    for _ in 0..budget {
        let mut best: Option<(usize, f64)> = None;
        for e in 0..num_edges {
            if chosen_mask[e] || touch[e].is_empty() {
                continue;
            }
            let mut gain = 0.0f64;
            for s in 0..s_count {
                if dead[s][e] || totals[s] <= 0.0 {
                    continue;
                }
                let row = &covered[s * t_count..(s + 1) * t_count];
                for &t in &touch[e] {
                    if !row[t as usize] {
                        gain += vols[s][t as usize] / totals[s];
                    }
                }
            }
            // Strict improvement: ties keep the smallest link index.
            if best.is_none_or(|(_, g)| gain > g) {
                best = Some((e, gain));
            }
        }
        let Some((e, gain)) = best else { break };
        if gain <= 0.0 {
            break;
        }
        chosen_mask[e] = true;
        chosen.push(e);
        for s in 0..s_count {
            if dead[s][e] {
                continue;
            }
            for &t in &touch[e] {
                covered[s * t_count + t as usize] = true;
            }
        }
    }
    chosen.sort_unstable();
    Ok(chosen)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::fixture_figure3;

    fn scenario(failed: &[usize], factors: &[(usize, f64)]) -> Scenario {
        Scenario {
            failed_links: failed.to_vec(),
            demand_factors: factors.to_vec(),
        }
    }

    #[test]
    fn warm_matches_cold_bitwise_on_figure3() {
        let inst = fixture_figure3();
        let scenarios = vec![
            scenario(&[], &[]),
            scenario(&[1], &[(0, 2.5)]),
            scenario(&[0, 2], &[(1, 0.25), (3, 10.0)]),
            scenario(&[1, 2, 3], &[(2, 0.0)]),
            scenario(&[4], &[(0, 1.0 / 3.0), (2, 7.5)]),
        ];
        for placement in [vec![1, 2], vec![0], vec![], vec![0, 1, 2, 3, 4]] {
            let mut delta = DeltaInstance::from_instance(&inst);
            let warm = score_ensemble(&mut delta, &placement, &scenarios).unwrap();
            let cold = score_ensemble_cold(&inst, &[], &placement, &scenarios).unwrap();
            assert_eq!(warm.per_scenario.len(), cold.per_scenario.len());
            for (w, c) in warm.per_scenario.iter().zip(&cold.per_scenario) {
                assert_eq!(w.coverage.to_bits(), c.coverage.to_bits());
                assert_eq!(w.live_devices, c.live_devices);
            }
            assert_eq!(
                warm.expected_coverage.to_bits(),
                cold.expected_coverage.to_bits()
            );
            assert_eq!(warm.p99_tail.to_bits(), cold.p99_tail.to_bits());
            assert_eq!(warm.worst_case.to_bits(), cold.worst_case.to_bits());
            // The chain is back in its entry state.
            assert!(delta.disabled().is_empty());
            for (t, &(v, _)) in inst.traffics.iter().enumerate() {
                assert_eq!(delta.demand(t).to_bits(), v.to_bits());
            }
        }
    }

    #[test]
    fn base_failures_persist_across_scenarios() {
        let inst = fixture_figure3();
        let mut delta = DeltaInstance::from_instance(&inst);
        delta.fail_link(1);
        // Scenario re-failing link 1 must not double-fault or restore it.
        let scenarios = vec![scenario(&[1], &[]), scenario(&[], &[])];
        let warm = score_ensemble(&mut delta, &[1, 2], &scenarios).unwrap();
        let cold = score_ensemble_cold(&inst, &[1], &[1, 2], &scenarios).unwrap();
        for (w, c) in warm.per_scenario.iter().zip(&cold.per_scenario) {
            assert_eq!(w.coverage.to_bits(), c.coverage.to_bits());
            assert_eq!(w.live_devices, c.live_devices);
        }
        assert_eq!(delta.disabled(), &[1], "entry failure must survive");
    }

    #[test]
    fn routed_scoring_matches_fresh_chain_replay() {
        use popgen::{PopSpec, TrafficSpec};

        let pop = PopSpec::paper_10().build();
        let ts = TrafficSpec::default().generate(&pop, 0);
        let mut delta = DeltaInstance::from_traffic(&pop.graph, &ts);
        let placement = vec![0, 3, 7];
        let scenarios = vec![
            scenario(&[2], &[(0, 3.0)]),
            scenario(&[], &[(1, 0.5)]),
            scenario(&[0, 5], &[]),
        ];
        let warm = score_ensemble(&mut delta, &placement, &scenarios).unwrap();
        assert!(delta.disabled().is_empty(), "chain must reset");
        for (i, s) in scenarios.iter().enumerate() {
            // Independent fresh chain per scenario: the cold reference for
            // routed instances (supports re-route around failures).
            let mut fresh = DeltaInstance::from_traffic(&pop.graph, &ts);
            for &(t, f) in &s.demand_factors {
                fresh.scale_demand(t, f);
            }
            for &e in &s.failed_links {
                fresh.fail_link(e);
            }
            let inst = fresh.instance();
            let live: Vec<usize> = placement
                .iter()
                .copied()
                .filter(|e| fresh.disabled().binary_search(e).is_err())
                .collect();
            let want = inst.coverage(&live) / inst.total_volume();
            assert_eq!(
                warm.per_scenario[i].coverage.to_bits(),
                want.to_bits(),
                "scenario {i}"
            );
            assert_eq!(warm.per_scenario[i].live_devices, live.len());
        }
        // And the chain still answers like new after the campaign.
        let replay = DeltaInstance::from_traffic(&pop.graph, &ts);
        let a = delta.instance();
        let b = replay.instance();
        for (x, y) in a.traffics.iter().zip(&b.traffics) {
            assert_eq!(x.0.to_bits(), y.0.to_bits());
            assert_eq!(x.1, y.1);
        }
    }

    #[test]
    fn summary_definitions() {
        let inst = fixture_figure3();
        let scenarios: Vec<Scenario> = (0..4)
            .map(|i| scenario(if i == 3 { &[1, 2] } else { &[] }, &[]))
            .collect();
        let mut delta = DeltaInstance::from_instance(&inst);
        let score = score_ensemble(&mut delta, &[1, 2], &scenarios).unwrap();
        // Links 1 and 2 cover everything; scenario 3 kills both.
        assert_eq!(score.worst_case, 0.0);
        assert_eq!(score.p99_tail, 0.0, "n < 101: tail is the worst case");
        assert!((score.expected_coverage - 0.75).abs() < 1e-12);
        assert_eq!(score.per_scenario[3].live_devices, 0);
    }

    #[test]
    fn greedy_expected_degenerates_to_static_greedy_without_failures() {
        let inst = fixture_figure3();
        let scenarios = vec![scenario(&[], &[])];
        let picked = greedy_expected(&inst, &[], &scenarios, 2).unwrap();
        // Figure 3's full cover: links 1 and 2 (each covering two
        // traffics' volume after link 0's tie loses on index order —
        // greedy picks 0 first at volume 4, then 1 and 2 tie at 1 each).
        let on_static = crate::passive::greedy_static(&inst, 1.0).unwrap();
        assert_eq!(picked.len(), 2);
        assert_eq!(picked[0], *on_static.edges.first().unwrap());
    }

    #[test]
    fn greedy_expected_avoids_failing_links() {
        let inst = fixture_figure3();
        // Link 0 carries the most volume but fails in every scenario:
        // the stochastic greedy must not waste a device on it.
        let scenarios = vec![scenario(&[0], &[]), scenario(&[0], &[])];
        let picked = greedy_expected(&inst, &[], &scenarios, 2).unwrap();
        assert!(!picked.contains(&0), "dead link picked: {picked:?}");
        assert_eq!(picked, vec![1, 2]);
    }

    #[test]
    fn validation_is_typed_and_mutation_free() {
        let inst = fixture_figure3();
        let mut delta = DeltaInstance::from_instance(&inst);
        let cases = [
            (vec![9], vec![scenario(&[], &[])], "placement"),
            (vec![0], vec![], "scenarios"),
            (vec![0], vec![scenario(&[9], &[])], "scenario"),
            (vec![0], vec![scenario(&[2, 1], &[])], "scenario"),
            (vec![0], vec![scenario(&[], &[(9, 1.0)])], "scenario"),
            (vec![0], vec![scenario(&[], &[(0, -1.0)])], "scenario"),
            (
                vec![0],
                vec![scenario(&[], &[(1, 1.0), (1, 2.0)])],
                "scenario",
            ),
        ];
        for (placement, scenarios, field) in cases {
            let err = score_ensemble(&mut delta, &placement, &scenarios).unwrap_err();
            assert_eq!(err.field, field, "{placement:?} / {scenarios:?}");
            let err = score_ensemble_cold(&inst, &[], &placement, &scenarios).unwrap_err();
            assert_eq!(err.field, field);
        }
        assert!(delta.disabled().is_empty());
    }
}
