//! Flow-based branch-and-bound for `PPM(k)` — the "branching algorithm"
//! the paper's Section 4.3 says the MECF framework enables.
//!
//! The observation: under branching, the linear relaxation of the arc-path
//! program (LP 1) is *exactly a minimum-cost flow* on the auxiliary graph:
//!
//! * an edge fixed **installed** contributes a free arc `(S, w_e)`;
//! * an edge fixed **forbidden** loses its arc;
//! * a free edge keeps cost `1/load(e)` per routed unit, so a fully used
//!   free edge costs exactly one device.
//!
//! `bound(node) = |installed| + ⌈mincostflow(k·V)⌉` is a valid lower bound
//! (any feasible completion routes each covered traffic through one of its
//! selected edges, paying at most one per device), and it is computed in
//! milliseconds by successive shortest paths — three orders of magnitude
//! faster than the simplex on the 15-router / 1980-traffic instance of
//! Figure 8. Every node also yields a feasible incumbent for free: the
//! installed edges plus the free edges carrying flow form a cover.

use mcmf::mecf::MonitoringInstance;

use crate::instance::PpmInstance;
use crate::passive::{greedy_adaptive, greedy_static, ExactOptions, PpmSolution};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EdgeState {
    Free,
    Installed,
    Forbidden,
}

/// Exact `PPM(k)` via branch-and-bound with min-cost-flow bounds.
///
/// Same contract as [`crate::passive::solve_ppm_exact`] (which uses the
/// LP 2 MIP): returns `None` when the target is unreachable, and a
/// [`PpmSolution`] with `proven_optimal` reflecting whether the search
/// completed within the node limit. Preferred for large instances (the
/// Figure 8 scale); the MIP route is kept for cross-validation.
pub fn solve_ppm_mecf_bb(inst: &PpmInstance, k: f64, opts: &ExactOptions) -> Option<PpmSolution> {
    assert!(
        k.is_finite() && (0.0..=1.0 + 1e-12).contains(&k),
        "monitoring fraction k must lie in [0, 1], got {k}"
    );
    let target = k * inst.total_volume();
    if target > inst.max_coverage_fraction() * inst.total_volume() + 1e-9 {
        return None;
    }
    let merged = inst.merged();
    let mon = merged.to_monitoring();
    let loads = mon.edge_loads();
    let ne = merged.num_edges;

    // Edge → traffics index, built once: the incremental redundancy prune
    // walks it at every incumbent instead of recomputing coverage.
    let mut edge_traffics: Vec<Vec<u32>> = vec![Vec::new(); ne];
    for (t, (_, support)) in merged.traffics.iter().enumerate() {
        for &e in support {
            edge_traffics[e].push(t as u32);
        }
    }

    // Initial incumbent from the greedy pair.
    let mut incumbent: Option<Vec<usize>> = match (greedy_static(inst, k), greedy_adaptive(inst, k))
    {
        (Some(a), Some(b)) => Some(if a.device_count() <= b.device_count() {
            a.edges
        } else {
            b.edges
        }),
        (a, b) => a.or(b).map(|s| s.edges),
    };

    // DFS over edge fixings. Each node re-evaluates the flow bound.
    struct Frame {
        state: Vec<EdgeState>,
        installed: usize,
    }
    let mut stack = vec![Frame {
        state: vec![EdgeState::Free; ne],
        installed: 0,
    }];
    let mut nodes = 0usize;
    let mut proven = true;
    let start = std::time::Instant::now();

    // Scratch buffers reused across every node's flow bound: the bound is
    // called once per node, and per-node allocation of the item list and
    // the per-edge flow table dominated small-instance profiles.
    let mut items: Vec<(f64, f64, usize)> = Vec::with_capacity(merged.traffics.len());
    let mut with_flow: Vec<(bool, f64)> = vec![(false, 0.0); ne];

    while let Some(frame) = stack.pop() {
        if nodes >= opts.max_nodes || opts.time_limit.is_some_and(|l| start.elapsed() >= l) {
            proven = false;
            break;
        }
        nodes += 1;

        let best = incumbent.as_ref().map(|e| e.len()).unwrap_or(usize::MAX);
        if frame.installed + 1 > best {
            continue; // even one more device cannot improve
        }

        // Flow bound for this node.
        let Some((bound_frac, routed)) = flow_bound(
            &mon,
            &loads,
            &frame.state,
            target,
            &mut items,
            &mut with_flow,
        ) else {
            continue; // target unreachable under these fixings
        };
        let flow_edges = &with_flow;
        let bound = frame.installed + (bound_frac - 1e-9).ceil().max(0.0) as usize;
        if bound >= best {
            continue;
        }

        // Free incumbent: installed ∪ free-with-flow edges cover the target
        // (the flow routed `target` units through exactly those arcs).
        if routed + 1e-6 >= target {
            let mut cover: Vec<usize> = (0..ne)
                .filter(|&e| frame.state[e] == EdgeState::Installed || flow_edges[e].0)
                .collect();
            prune_redundant(&merged, &loads, &edge_traffics, &mut cover, target);
            if cover.len() < best {
                incumbent = Some(cover);
            }
        }
        let best = incumbent.as_ref().map(|e| e.len()).unwrap_or(usize::MAX);
        if bound >= best {
            continue;
        }

        // Branch on the most fractional free edge of the relaxation
        // (usage ratio flow/load closest to 1/2, ties toward heavier
        // load): saturated or unused edges are already integral there, so
        // splitting on them wastes a level.
        let branch_edge = (0..ne)
            .filter(|&e| frame.state[e] == EdgeState::Free && flow_edges[e].1 > 1e-9)
            .max_by(|&a, &b| {
                let score = |e: usize| {
                    let frac = (flow_edges[e].1 / loads[e]).clamp(0.0, 1.0);
                    let centrality = 1.0 - (frac - 0.5).abs(); // 1 at 1/2
                    (centrality, loads[e])
                };
                let (ca, la) = score(a);
                let (cb, lb) = score(b);
                ca.partial_cmp(&cb)
                    .expect("finite")
                    .then(la.partial_cmp(&lb).expect("finite"))
                    .then(b.cmp(&a))
            });
        let Some(e) = branch_edge else {
            continue; // no free edge carries flow: the cover above is it
        };

        // Down child (forbid e) pushed first so the up child (install e,
        // plunging toward covers) is explored first.
        let mut down = frame.state.clone();
        down[e] = EdgeState::Forbidden;
        stack.push(Frame {
            state: down,
            installed: frame.installed,
        });
        let mut up = frame.state;
        up[e] = EdgeState::Installed;
        stack.push(Frame {
            state: up,
            installed: frame.installed + 1,
        });
    }

    incumbent.map(|edges| PpmSolution::from_edges(inst, edges, proven))
}

/// Computes the min-cost-flow bound for a node analytically.
///
/// Because every `(S, w_e)` and `(w_e, w_t)` arc of the auxiliary graph is
/// *uncapacitated*, the min-cost flow decomposes per traffic: a unit of
/// traffic `t` is cheapest through `argmin_{e ∈ p_t, e allowed} cost(e)`
/// with `cost = 0` on installed edges and `1/load(e)` on free ones; the
/// optimal flow is then the fractional knapsack "monitor the cheapest
/// traffics first until `k·V`". This gives the exact same value as running
/// successive shortest paths, in `O(Σ|p_t| + T log T)` — microseconds per
/// node instead of a full flow solve. (The equivalence is unit-tested
/// against [`mcmf::mincost::min_cost_flow`] below.)
///
/// Returns the fractional device bound over free edges and the routed
/// volume, filling `with_flow` with a `(carries flow, flow amount)` pair
/// per edge; `None` when the target cannot be routed. `items` and
/// `with_flow` are caller-owned scratch buffers reused across nodes.
fn flow_bound(
    mon: &MonitoringInstance,
    loads: &[f64],
    state: &[EdgeState],
    target: f64,
    items: &mut Vec<(f64, f64, usize)>,
    with_flow: &mut Vec<(bool, f64)>,
) -> Option<(f64, f64)> {
    let ne = mon.num_edges;
    with_flow.clear();
    with_flow.resize(ne, (false, 0.0));
    if target <= 1e-12 {
        return Some((0.0, 0.0));
    }

    // Cheapest allowed edge per traffic; ties prefer the heavier load so
    // flow consolidates onto fewer edges (better incumbents).
    items.clear();
    for (v, support) in &mon.traffics {
        let mut best: Option<(f64, usize)> = None;
        for &e in support {
            let cost = match state[e] {
                EdgeState::Forbidden => continue,
                EdgeState::Installed => 0.0,
                EdgeState::Free => {
                    if loads[e] > 1e-12 {
                        1.0 / loads[e]
                    } else {
                        continue;
                    }
                }
            };
            let better = match best {
                None => true,
                Some((bc, be)) => {
                    cost < bc - 1e-15 || ((cost - bc).abs() <= 1e-15 && loads[e] > loads[be])
                }
            };
            if better {
                best = Some((cost, e));
            }
        }
        if let Some((c, e)) = best {
            items.push((c, *v, e));
        }
    }

    let coverable: f64 = items.iter().map(|&(_, v, _)| v).sum();
    if coverable + 1e-6 < target {
        return None;
    }

    // Fractional knapsack: cheapest unit costs first.
    items.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite costs"));
    let mut routed = 0.0f64;
    let mut cost = 0.0f64;
    for &(c, v, e) in items.iter() {
        if routed + 1e-12 >= target {
            break;
        }
        let take = v.min(target - routed);
        routed += take;
        cost += c * take;
        if state[e] == EdgeState::Free {
            with_flow[e].0 = true;
            with_flow[e].1 += take;
        }
    }
    Some((cost, routed))
}

/// Drops redundant edges from a cover, greedily, preferring to drop
/// low-load edges first; keeps the cover feasible for `target`.
///
/// Incremental: per-traffic cover counts plus the `edge_traffics` index
/// turn each trial drop into a walk over that edge's own traffics instead
/// of a full coverage recomputation — `O(Σ_{e∈cover} |traffics(e)|)` per
/// incumbent instead of `O(|cover| · Σ_t |p_t|)`, and this runs at nearly
/// every node of the search.
fn prune_redundant(
    inst: &PpmInstance,
    loads: &[f64],
    edge_traffics: &[Vec<u32>],
    cover: &mut Vec<usize>,
    target: f64,
) {
    // How many cover edges each traffic currently routes through, and the
    // total volume covered (traffics with count ≥ 1).
    let mut cnt = vec![0u32; inst.traffics.len()];
    for &e in cover.iter() {
        for &t in &edge_traffics[e] {
            cnt[t as usize] += 1;
        }
    }
    let mut covered: f64 = inst
        .traffics
        .iter()
        .zip(&cnt)
        .filter(|&(_, &c)| c > 0)
        .map(|((v, _), _)| *v)
        .sum();

    let mut order: Vec<usize> = (0..cover.len()).collect();
    order.sort_by(|&i, &j| {
        loads[cover[i]]
            .partial_cmp(&loads[cover[j]])
            .expect("finite")
    });
    let mut keep: Vec<bool> = vec![true; cover.len()];
    for &i in &order {
        let e = cover[i];
        // Volume lost if e is dropped: traffics covered only by e.
        let loss: f64 = edge_traffics[e]
            .iter()
            .filter(|&&t| cnt[t as usize] == 1)
            .map(|&t| inst.traffics[t as usize].0)
            .sum();
        if covered - loss + 1e-9 >= target {
            keep[i] = false;
            covered -= loss;
            for &t in &edge_traffics[e] {
                cnt[t as usize] -= 1;
            }
        }
    }
    *cover = cover
        .iter()
        .enumerate()
        .filter(|&(j, _)| keep[j])
        .map(|(_, &e)| e)
        .collect();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::fixture_figure3;
    use crate::passive::solve_ppm_exact;

    #[test]
    fn figure3_optimum() {
        let inst = fixture_figure3();
        let s = solve_ppm_mecf_bb(&inst, 1.0, &ExactOptions::default()).unwrap();
        assert_eq!(s.device_count(), 2);
        assert!(s.proven_optimal);
        assert!(inst.is_feasible(&s.edges, 1.0));
    }

    #[test]
    fn agrees_with_lp2_mip_on_pop() {
        let pop = popgen::PopSpec::paper_10().build();
        let ts = popgen::TrafficSpec::default().generate(&pop, 7);
        let inst = crate::instance::PpmInstance::from_traffic(&pop.graph, &ts);
        for k in [0.6, 0.8, 0.9, 0.95, 1.0] {
            let a = solve_ppm_mecf_bb(&inst, k, &ExactOptions::default()).unwrap();
            let b = solve_ppm_exact(&inst, k, &ExactOptions::default()).unwrap();
            assert!(a.proven_optimal && b.proven_optimal);
            assert_eq!(a.device_count(), b.device_count(), "k = {k}");
            assert!(inst.is_feasible(&a.edges, k));
        }
    }

    #[test]
    fn agrees_with_brute_force_small() {
        let inst = crate::instance::PpmInstance::new(
            6,
            vec![
                (4.0, vec![0, 1]),
                (3.0, vec![1, 2]),
                (2.0, vec![2, 3]),
                (2.0, vec![3, 4]),
                (1.0, vec![4, 5]),
                (1.0, vec![0, 5]),
            ],
        );
        for k_pct in [30, 50, 70, 90, 100] {
            let k = k_pct as f64 / 100.0;
            let a = solve_ppm_mecf_bb(&inst, k, &ExactOptions::default()).unwrap();
            let b = crate::passive::brute_force_ppm(&inst, k).unwrap();
            assert_eq!(a.device_count(), b.device_count(), "k = {k}");
        }
    }

    #[test]
    fn unreachable_target_is_none() {
        let inst = crate::instance::PpmInstance::new(1, vec![(1.0, vec![0]), (1.0, vec![])]);
        assert!(solve_ppm_mecf_bb(&inst, 1.0, &ExactOptions::default()).is_none());
        assert!(solve_ppm_mecf_bb(&inst, 0.5, &ExactOptions::default()).is_some());
    }

    #[test]
    fn analytic_bound_matches_real_min_cost_flow() {
        // The knapsack decomposition must equal the SSP min-cost flow on
        // the same auxiliary graph (uncapacitated (S, w_e) arcs).
        let pop = popgen::PopSpec::paper_10().build();
        let ts = popgen::TrafficSpec::default().generate(&pop, 4);
        let inst = crate::instance::PpmInstance::from_traffic(&pop.graph, &ts);
        let mon = inst.to_monitoring();
        let loads = mon.edge_loads();
        let state = vec![EdgeState::Free; mon.num_edges];
        let mut items = Vec::new();
        let mut with_flow = Vec::new();
        for k in [0.3, 0.6, 0.9] {
            let target = k * inst.total_volume();
            let (analytic, routed) =
                flow_bound(&mon, &loads, &state, target, &mut items, &mut with_flow)
                    .expect("coverable");
            assert!((routed - target).abs() < 1e-6);
            // Real min-cost flow with 1/load costs.
            let costs: Vec<f64> = loads
                .iter()
                .map(|&l| if l > 1e-12 { 1.0 / l } else { 1e12 })
                .collect();
            let mut g = mcmf::mecf::build_mecf(&mon, &costs);
            let r = mcmf::mincost::min_cost_flow(&mut g.net, g.source, g.sink, target);
            assert!(
                (analytic - r.cost).abs() < 1e-6,
                "k = {k}: analytic {analytic} vs flow {}",
                r.cost
            );
        }
    }

    #[test]
    fn zero_k_empty() {
        let inst = fixture_figure3();
        let s = solve_ppm_mecf_bb(&inst, 0.0, &ExactOptions::default()).unwrap();
        assert_eq!(s.device_count(), 0);
    }

    #[test]
    fn node_limit_returns_feasible() {
        let pop = popgen::PopSpec::paper_10().build();
        let ts = popgen::TrafficSpec::default().generate(&pop, 2);
        let inst = crate::instance::PpmInstance::from_traffic(&pop.graph, &ts);
        let opts = ExactOptions {
            max_nodes: 1,
            ..Default::default()
        };
        let s = solve_ppm_mecf_bb(&inst, 0.9, &opts).unwrap();
        assert!(inst.is_feasible(&s.edges, 0.9));
        // With a single node the search cannot be complete unless the
        // incumbent already matched the bound.
        let full = solve_ppm_mecf_bb(&inst, 0.9, &ExactOptions::default()).unwrap();
        assert!(s.device_count() >= full.device_count());
    }
}
