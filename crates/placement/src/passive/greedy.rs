//! The greedy heuristics for `PPM(k)`.
//!
//! Three variants, all from the paper:
//!
//! * [`greedy_static`] — "the greedy approach that selects links in
//!   decreasing weight order" (Section 4.4): sort edges by initial load
//!   once, add until the target is met. This is the baseline plotted in
//!   Figures 7 and 8.
//! * [`greedy_adaptive`] — the set-cover greedy ("always choose the edge
//!   which permits to monitor the larger volume of traffic not monitored
//!   yet", Section 4.3), which carries the Slavík guarantee.
//! * [`flow_greedy_ppm`] — the min-cost-flow computation on the MECF
//!   linear relaxation with `1/load(e)` arc costs, which the paper shows
//!   formalizes the greedy family (Section 4.3 "Heuristics").

use crate::instance::PpmInstance;
use crate::passive::PpmSolution;
use crate::reduction::ppm_to_msc;
use crate::setcover::greedy_partial_cover;

/// Static decreasing-load greedy. Returns `None` when even all edges
/// cannot reach the target (uncoverable traffic).
pub fn greedy_static(inst: &PpmInstance, k: f64) -> Option<PpmSolution> {
    check_k(k);
    let total = inst.total_volume();
    let target = k * total;
    let loads = inst.edge_loads();
    let mut order: Vec<usize> = (0..inst.num_edges).collect();
    // Decreasing load; ties on the smaller edge index for determinism.
    order.sort_by(|&a, &b| {
        loads[b]
            .partial_cmp(&loads[a])
            .expect("finite loads")
            .then(a.cmp(&b))
    });

    let mut covered = vec![false; inst.traffics.len()];
    let mut covered_w = 0.0f64;
    let mut picked = Vec::new();
    let tol = 1e-9 * total.max(1.0);
    for e in order {
        if covered_w + tol >= target {
            break;
        }
        if loads[e] <= 0.0 {
            break; // only empty edges remain
        }
        picked.push(e);
        for (t, (v, support)) in inst.traffics.iter().enumerate() {
            if !covered[t] && support.contains(&e) {
                covered[t] = true;
                covered_w += v;
            }
        }
    }
    if covered_w + tol < target {
        return None;
    }
    Some(PpmSolution::from_edges(inst, picked, false))
}

/// Adaptive (set-cover) greedy: repeatedly pick the edge covering the most
/// uncovered volume.
pub fn greedy_adaptive(inst: &PpmInstance, k: f64) -> Option<PpmSolution> {
    check_k(k);
    let msc = ppm_to_msc(inst);
    let target = k * inst.total_volume();
    let g = greedy_partial_cover(&msc, target)?;
    Some(PpmSolution::from_edges(inst, g.selection, false))
}

/// Flow greedy on the MECF relaxation (cost `1/load(e)` per monitored
/// unit).
pub fn flow_greedy_ppm(inst: &PpmInstance, k: f64) -> Option<PpmSolution> {
    check_k(k);
    let mon = inst.to_monitoring();
    let r = mcmf::mecf::flow_greedy(&mon, k)?;
    let edges: Vec<usize> = r
        .selected
        .iter()
        .enumerate()
        .filter(|(_, &s)| s)
        .map(|(e, _)| e)
        .collect();
    Some(PpmSolution::from_edges(inst, edges, false))
}

fn check_k(k: f64) {
    assert!(
        k.is_finite() && (0.0..=1.0 + 1e-12).contains(&k),
        "monitoring fraction k must lie in [0, 1], got {k}"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::fixture_figure3;

    #[test]
    fn figure3_static_greedy_needs_three() {
        // The paper's counter-example: greedy takes the load-4 link first,
        // then needs two more; the optimum is the two load-3 links.
        let inst = fixture_figure3();
        let g = greedy_static(&inst, 1.0).unwrap();
        assert_eq!(g.device_count(), 3, "greedy is baited into 3 devices");
        assert!(g.coverage >= 6.0 - 1e-9);
        assert!(!g.proven_optimal);
    }

    #[test]
    fn figure3_adaptive_also_baited() {
        // The adaptive greedy also starts with the load-4 link here.
        let inst = fixture_figure3();
        let g = greedy_adaptive(&inst, 1.0).unwrap();
        assert_eq!(g.device_count(), 3);
    }

    #[test]
    fn partial_target_needs_fewer() {
        let inst = fixture_figure3();
        // 4/6 of the volume: the single heavy link suffices.
        let g = greedy_static(&inst, 4.0 / 6.0).unwrap();
        assert_eq!(g.device_count(), 1);
        assert_eq!(g.edges, vec![0]);
        let a = greedy_adaptive(&inst, 4.0 / 6.0).unwrap();
        assert_eq!(a.device_count(), 1);
    }

    #[test]
    fn flow_greedy_feasible() {
        let inst = fixture_figure3();
        for k in [0.5, 0.8, 1.0] {
            let f = flow_greedy_ppm(&inst, k).unwrap();
            assert!(
                inst.is_feasible(&f.edges, k),
                "flow greedy feasible at k={k}"
            );
        }
    }

    #[test]
    fn zero_k_selects_nothing() {
        let inst = fixture_figure3();
        assert_eq!(greedy_static(&inst, 0.0).unwrap().device_count(), 0);
        assert_eq!(greedy_adaptive(&inst, 0.0).unwrap().device_count(), 0);
    }

    #[test]
    fn uncoverable_target_is_none() {
        let inst = crate::instance::PpmInstance::new(
            2,
            vec![(1.0, vec![0]), (1.0, vec![])], // second traffic uncoverable
        );
        assert!(greedy_static(&inst, 1.0).is_none());
        assert!(greedy_adaptive(&inst, 1.0).is_none());
        assert!(greedy_static(&inst, 0.5).is_some());
    }

    #[test]
    #[should_panic(expected = "must lie in [0, 1]")]
    fn rejects_bad_k() {
        greedy_static(&fixture_figure3(), 1.5);
    }

    #[test]
    fn coverage_fraction_reported() {
        let inst = fixture_figure3();
        let g = greedy_static(&inst, 4.0 / 6.0).unwrap();
        assert!((g.coverage_fraction() - 4.0 / 6.0).abs() < 1e-9);
    }
}
