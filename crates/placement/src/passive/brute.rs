//! Exhaustive `PPM(k)` for small instances — the ground truth used by the
//! tests and property tests to validate the MIP and the heuristics.

use crate::instance::PpmInstance;
use crate::passive::PpmSolution;
use crate::reduction::ppm_to_msc;
use crate::setcover::brute_force_cover;

/// Finds a minimum-cardinality edge set covering at least `k·V` by
/// exhaustive search over the (≤ 20) edges.
///
/// Returns `None` when no edge set reaches the target.
pub fn brute_force_ppm(inst: &PpmInstance, k: f64) -> Option<PpmSolution> {
    assert!(
        k.is_finite() && (0.0..=1.0 + 1e-12).contains(&k),
        "monitoring fraction k must lie in [0, 1], got {k}"
    );
    let msc = ppm_to_msc(inst);
    let target = k * inst.total_volume();
    let selection = brute_force_cover(&msc, target)?;
    Some(PpmSolution::from_edges(inst, selection, true))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::fixture_figure3;

    #[test]
    fn figure3_brute_force() {
        let inst = fixture_figure3();
        let s = brute_force_ppm(&inst, 1.0).unwrap();
        assert_eq!(s.device_count(), 2);
        assert!(s.proven_optimal);
    }

    #[test]
    fn partial_targets_monotone_in_k() {
        let inst = fixture_figure3();
        let mut last = 0;
        for k in [0.2, 0.5, 0.7, 0.9, 1.0] {
            let s = brute_force_ppm(&inst, k).unwrap();
            assert!(s.device_count() >= last, "device count monotone in k");
            last = s.device_count();
        }
    }

    #[test]
    fn impossible_target() {
        let inst = PpmInstance::new(1, vec![(1.0, vec![0]), (3.0, vec![])]);
        assert!(brute_force_ppm(&inst, 0.9).is_none());
        assert_eq!(brute_force_ppm(&inst, 0.25).unwrap().device_count(), 1);
    }
}
