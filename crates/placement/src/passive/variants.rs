//! Deployment variants of `PPM(k)` enabled by the MIP formulation
//! (paper Sections 1 and 4.3):
//!
//! * **incremental** — "from a set of already installed devices that cannot
//!   move, compute the best way to position a new set of monitors": the
//!   installed `x_e` are fixed to 1 and the MIP minimizes the added count;
//! * **budget** — "finding the best positioning of a limited number of
//!   devices": maximize the monitored volume subject to `Σ x_e ≤ B`;
//! * **expected gain** — "the estimation of the expected gain in buying one
//!   or a set of new devices": the budget problem on top of an installed
//!   base, reported as the coverage delta.

use milp::{Cmp, MipOptions, MipOutcome, Model, Sense, SolveStatus, VarId, VarKind};

use crate::instance::PpmInstance;
use crate::passive::{build_lp2_target, ExactOptions, PpmSolution};
use crate::solve::Anytime;

/// Solution of the budget-constrained maximum-coverage problem.
#[derive(Debug, Clone, PartialEq)]
pub struct BudgetSolution {
    /// All selected edges (including the pre-installed ones).
    pub edges: Vec<usize>,
    /// Volume covered.
    pub coverage: f64,
    /// Total volume of the instance.
    pub total_volume: f64,
    /// Whether the MIP proved optimality.
    pub proven_optimal: bool,
}

impl BudgetSolution {
    /// Fraction of the total volume covered.
    pub fn coverage_fraction(&self) -> f64 {
        if self.total_volume > 0.0 {
            self.coverage / self.total_volume
        } else {
            0.0
        }
    }
}

/// Minimum number of *additional* devices to reach coverage `k`, given
/// `installed` devices that cannot move. Returns the complete placement
/// (installed + new). `None` when the target is unreachable.
pub fn solve_incremental(
    inst: &PpmInstance,
    k: f64,
    installed: &[usize],
    opts: &ExactOptions,
) -> Option<PpmSolution> {
    let merged = inst.merged();
    // Target is k of the ORIGINAL volume (merging drops uncoverable mass).
    let (mut model, xs) = build_lp2_target(&merged, k * inst.total_volume());
    for &e in installed {
        assert!(e < inst.num_edges, "installed edge {e} out of range");
        model.fix_var(xs[e], 1.0);
        // Installed devices are sunk cost: exclude from the objective so
        // the solver minimizes only the new devices.
        model.set_cost(xs[e], 0.0);
    }
    let mip_opts = MipOptions {
        max_nodes: opts.max_nodes,
        time_limit: opts.time_limit,
        integral_objective: Some(true),
        warm_basis: true,
        ..Default::default()
    };
    let sol = match model.solve_mip_with(&mip_opts) {
        Ok(s) => s,
        Err(milp::SolverError::Infeasible) => return None,
        Err(e) => panic!("MIP solver failed unexpectedly: {e}"),
    };
    let edges: Vec<usize> = (0..merged.num_edges)
        .filter(|&e| sol.is_one(xs[e], 1e-4))
        .collect();
    Some(PpmSolution::from_edges(
        inst,
        edges,
        sol.status == SolveStatus::Optimal,
    ))
}

/// Builds the maximum-coverage (budget) MIP over a merged instance:
/// maximize `Σ δ_t v_t` with `δ_t ≤ Σ_{e∈p_t} x_e` and a device budget
/// row over the non-installed edges. The budget row is the **last**
/// constraint with a placeholder RHS of 0 — callers set the actual budget
/// with [`Model::set_rhs`], which is what lets the warm-started chains of
/// [`crate::delta`] walk a budget grid on one model.
pub(crate) fn build_budget_model(merged: &PpmInstance, installed: &[usize]) -> (Model, Vec<VarId>) {
    let mut model = Model::new(Sense::Maximize);
    let xs: Vec<VarId> = (0..merged.num_edges)
        .map(|e| model.add_var(format!("x_e{e}"), VarKind::Binary, 0.0, 1.0, 0.0))
        .collect();
    let mut budget_terms = Vec::new();
    for (e, &x) in xs.iter().enumerate() {
        if installed.contains(&e) {
            model.fix_var(x, 1.0);
        } else {
            budget_terms.push((x, 1.0));
        }
    }
    // Objective: Σ δ_t v_t; constraints δ_t ≤ Σ_{e∈p_t} x_e.
    for (t, (v, support)) in merged.traffics.iter().enumerate() {
        let d = model.add_var(format!("delta_t{t}"), VarKind::Continuous, 0.0, 1.0, *v);
        let mut terms: Vec<(VarId, f64)> = support.iter().map(|&e| (xs[e], 1.0)).collect();
        terms.push((d, -1.0));
        model.add_constr(terms, Cmp::Ge, 0.0);
    }
    model.add_constr(budget_terms, Cmp::Le, 0.0);
    (model, xs)
}

/// Maximum-coverage placement of at most `budget` new devices on top of
/// `installed` ones (pass `&[]` for a fresh deployment).
pub fn solve_budget(
    inst: &PpmInstance,
    budget: usize,
    installed: &[usize],
    opts: &ExactOptions,
) -> BudgetSolution {
    match solve_budget_anytime(inst, budget, installed, opts) {
        Anytime::Done(sol) => sol,
        // Legacy surface under a budget: degrade silently (the unified
        // API reports the degradation record instead).
        Anytime::Cut { incumbent, .. } => {
            incumbent.unwrap_or_else(|| crate::solve::greedy_budget(inst, budget, installed, &[]))
        }
    }
}

/// The one-shot budget kernel under the anytime contract, for the unified
/// dispatcher ([`crate::solve::solve_instance`]).
pub(crate) fn solve_budget_anytime(
    inst: &PpmInstance,
    budget: usize,
    installed: &[usize],
    opts: &ExactOptions,
) -> Anytime<BudgetSolution> {
    let merged = inst.merged();
    let (mut model, xs) = build_budget_model(&merged, installed);
    let budget_row = model.constr(model.constr_count() - 1);
    model.set_rhs(budget_row, budget as f64);

    let mip_opts = MipOptions {
        max_nodes: opts.max_nodes,
        time_limit: opts.time_limit,
        warm_basis: true,
        work_budget: opts.work_budget,
        ..Default::default()
    };
    let to_budget_solution = |sol: &milp::Solution, proven: bool| -> BudgetSolution {
        let edges: Vec<usize> = (0..merged.num_edges)
            .filter(|&e| sol.is_one(xs[e], 1e-4))
            .collect();
        let coverage = inst.coverage(&edges);
        BudgetSolution {
            edges,
            coverage,
            total_volume: inst.total_volume(),
            proven_optimal: proven,
        }
    };
    let (outcome, _) = model
        .solve_mip_anytime(&mip_opts, None)
        .expect("budget problem is always feasible");
    match outcome {
        MipOutcome::Complete(sol) => {
            let proven = sol.status == SolveStatus::Optimal;
            Anytime::Done(to_budget_solution(&sol, proven))
        }
        MipOutcome::Interrupted {
            incumbent,
            bound,
            work_spent,
        } => Anytime::Cut {
            incumbent: incumbent.map(|sol| to_budget_solution(&sol, false)),
            bound,
            work_spent,
        },
    }
}

/// Expected coverage gain (absolute volume) from buying `extra` devices on
/// top of `installed` — the paper's "estimation of the expected gain in
/// buying one or a set of new devices".
pub fn expected_gain(
    inst: &PpmInstance,
    installed: &[usize],
    extra: usize,
    opts: &ExactOptions,
) -> f64 {
    let before = inst.coverage(installed);
    let after = solve_budget(inst, extra, installed, opts).coverage;
    (after - before).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::fixture_figure3;

    #[test]
    fn incremental_respects_installed() {
        let inst = fixture_figure3();
        // Pre-install the greedy-bait heavy link 0; completing to k=1 needs
        // 2 more (links 3/4 or 1/2 pick up the weight-1 traffics).
        let s = solve_incremental(&inst, 1.0, &[0], &ExactOptions::default()).unwrap();
        assert!(s.edges.contains(&0), "installed device must stay");
        assert_eq!(
            s.device_count(),
            3,
            "two new devices on top of the installed one"
        );
        assert!(inst.is_feasible(&s.edges, 1.0));
    }

    #[test]
    fn incremental_with_empty_base_matches_exact() {
        let inst = fixture_figure3();
        let a = solve_incremental(&inst, 1.0, &[], &ExactOptions::default()).unwrap();
        let b = crate::passive::solve_ppm_exact(&inst, 1.0, &ExactOptions::default()).unwrap();
        assert_eq!(a.device_count(), b.device_count());
    }

    #[test]
    fn budget_zero_covers_installed_only() {
        let inst = fixture_figure3();
        let s = solve_budget(&inst, 0, &[0], &ExactOptions::default());
        assert_eq!(s.edges, vec![0]);
        assert_eq!(s.coverage, 4.0);
    }

    #[test]
    fn budget_one_fresh_takes_heaviest() {
        let inst = fixture_figure3();
        let s = solve_budget(&inst, 1, &[], &ExactOptions::default());
        assert_eq!(s.edges.len(), 1);
        assert_eq!(
            s.coverage, 4.0,
            "best single edge covers the two weight-2 traffics"
        );
    }

    #[test]
    fn budget_two_fresh_covers_everything() {
        let inst = fixture_figure3();
        let s = solve_budget(&inst, 2, &[], &ExactOptions::default());
        assert_eq!(s.coverage, 6.0);
        assert!((s.coverage_fraction() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn budget_is_monotone() {
        let inst = fixture_figure3();
        let mut last = 0.0;
        for b in 0..=3 {
            let s = solve_budget(&inst, b, &[], &ExactOptions::default());
            assert!(s.coverage + 1e-9 >= last);
            last = s.coverage;
        }
    }

    #[test]
    fn expected_gain_decreases_with_base() {
        let inst = fixture_figure3();
        let fresh = expected_gain(&inst, &[], 1, &ExactOptions::default());
        let on_top = expected_gain(&inst, &[0], 1, &ExactOptions::default());
        assert_eq!(fresh, 4.0);
        // With edge 0 installed, one more device adds at most 2.0 (one of
        // the weight-1 traffics via links 1/2... link 1 adds t2 (1.0) and
        // t0 already covered; link 2 likewise).
        assert!(on_top <= 2.0 + 1e-9);
        assert!(on_top > 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn incremental_rejects_bad_edge() {
        solve_incremental(&fixture_figure3(), 1.0, &[99], &ExactOptions::default());
    }
}
