//! Exact `PPM(k)` via the paper's MIP formulations.
//!
//! * [`build_lp2`] / [`solve_ppm_exact`] — Linear Program 2, the compact
//!   formulation: binary `x_e` (device on link `e`), fractional `δ_t`
//!   (share of traffic `t` monitored), constraints
//!   `Σ_{e ∈ p_t} x_e ≥ δ_t` and `Σ_t δ_t·v_t ≥ k·Σ_t v_t`.
//! * [`build_lp1`] / [`solve_ppm_mecf`] — Linear Program 1, the arc-path
//!   MECF formulation with explicit flow variables `f_t^e`; bigger but kept
//!   for cross-validation (Theorem 2 says both solve the same problem).
//!
//! The exact solver first merges identical-support traffics (halving the
//! row count on symmetric-routing instances), then warm-starts the MIP with
//! the best greedy solution so branch-and-bound prunes from the start.

use milp::{Cmp, MipOptions, MipOutcome, Model, Sense, SolveStatus, VarId, VarKind};

use crate::instance::PpmInstance;
use crate::passive::{greedy_adaptive, greedy_static, PpmSolution};
use crate::solve::Anytime;

/// Options for the exact solvers.
#[derive(Debug, Clone)]
pub struct ExactOptions {
    /// Node limit handed to branch-and-bound.
    pub max_nodes: usize,
    /// Optional wall-clock limit.
    pub time_limit: Option<std::time::Duration>,
    /// Seed the MIP with the best greedy solution (default true).
    pub warm_start: bool,
    /// Relative optimality gap at which the search may stop early
    /// (default: prove optimality). Useful for the fixed-charge `PPME`
    /// MILP whose LP bound is loose.
    pub rel_gap: f64,
    /// Deterministic work budget (simplex iterations + refactorizations +
    /// branch-and-bound nodes; see [`milp::MipOptions::work_budget`]) for
    /// anytime solves. `None` (the default) solves to the legacy limits
    /// and is byte-identical to the pre-budget behavior. When set, the
    /// legacy kernels degrade silently to the best incumbent (or the
    /// paper's greedy when the search had none); route through the
    /// unified [`crate::solve::SolveRequest`] API to observe the
    /// degradation record ([`crate::solve::SolveOutcome::Degraded`]).
    pub work_budget: Option<u64>,
}

impl Default for ExactOptions {
    fn default() -> Self {
        Self {
            max_nodes: 50_000,
            time_limit: None,
            warm_start: true,
            rel_gap: 1e-9,
            work_budget: None,
        }
    }
}

/// Builds Linear Program 2 for `inst` at fraction `k` (of the instance's
/// own total volume).
///
/// Returns the model and the `x_e` variable per edge (the `δ_t` variables
/// follow in order but are internal). The generic building block behind
/// the exact solver and the incremental/budget variants.
pub fn build_lp2(inst: &PpmInstance, k: f64) -> (Model, Vec<VarId>) {
    build_lp2_target(inst, k * inst.total_volume())
}

/// [`build_lp2`] with an explicit coverage target in absolute volume.
///
/// This matters when solving a *merged* instance: merging drops
/// uncoverable (empty-support) traffics, so `k · merged.total_volume()`
/// would silently weaken the requirement; the exact solvers always pass
/// `k · V` of the original instance.
pub fn build_lp2_target(inst: &PpmInstance, target_volume: f64) -> (Model, Vec<VarId>) {
    let mut m = Model::new(Sense::Minimize);
    let xs: Vec<VarId> = (0..inst.num_edges)
        .map(|e| m.add_var(format!("x_e{e}"), VarKind::Binary, 0.0, 1.0, 1.0))
        .collect();
    let mut coverage_terms = Vec::with_capacity(inst.traffics.len());
    for (t, (v, support)) in inst.traffics.iter().enumerate() {
        let d = m.add_var(format!("delta_t{t}"), VarKind::Continuous, 0.0, 1.0, 0.0);
        // Σ_{e ∈ p_t} x_e - δ_t ≥ 0
        let mut terms: Vec<(VarId, f64)> = support.iter().map(|&e| (xs[e], 1.0)).collect();
        terms.push((d, -1.0));
        m.add_constr(terms, Cmp::Ge, 0.0);
        coverage_terms.push((d, *v));
    }
    // Σ_t δ_t v_t ≥ target
    m.add_constr(coverage_terms, Cmp::Ge, target_volume);
    (m, xs)
}

/// Builds Linear Program 1 (arc-path MECF form) for `inst` at fraction `k`.
///
/// Variables: `x_e` binary and one `f_t^e ≥ 0` per (traffic, edge on its
/// path). Constraints follow the paper verbatim:
/// `Σ_{t ∈ π_e} f_t^e ≤ x_e · Σ_{t ∈ π_e} v_t` (pay for the arc),
/// `Σ_{e ∈ p_t} f_t^e ≤ v_t` (volume cap), and the flow request
/// `Σ_t Σ_e f_t^e ≥ k·V`.
pub fn build_lp1(inst: &PpmInstance, k: f64) -> (Model, Vec<VarId>) {
    build_lp1_target(inst, k * inst.total_volume())
}

/// [`build_lp1`] with an explicit coverage target in absolute volume (see
/// [`build_lp2_target`] for why).
pub fn build_lp1_target(inst: &PpmInstance, target_volume: f64) -> (Model, Vec<VarId>) {
    let mut m = Model::new(Sense::Minimize);
    let xs: Vec<VarId> = (0..inst.num_edges)
        .map(|e| m.add_var(format!("x_e{e}"), VarKind::Binary, 0.0, 1.0, 1.0))
        .collect();
    let loads = inst.edge_loads();
    // f_t^e variables, grouped per edge for the capacity rows.
    let mut per_edge: Vec<Vec<(VarId, f64)>> = vec![Vec::new(); inst.num_edges];
    let mut request = Vec::new();
    for (t, (v, support)) in inst.traffics.iter().enumerate() {
        let mut per_traffic = Vec::with_capacity(support.len());
        for &e in support {
            let f = m.add_var(format!("f_t{t}_e{e}"), VarKind::Continuous, 0.0, *v, 0.0);
            per_edge[e].push((f, 1.0));
            per_traffic.push((f, 1.0));
            request.push((f, 1.0));
        }
        // Σ_{e ∈ p_t} f_t^e ≤ v_t
        m.add_constr(per_traffic, Cmp::Le, *v);
    }
    for (e, mut terms) in per_edge.into_iter().enumerate() {
        if terms.is_empty() {
            continue;
        }
        // Σ_{t ∈ π_e} f_t^e - x_e·load(e) ≤ 0
        terms.push((xs[e], -loads[e]));
        m.add_constr(terms, Cmp::Le, 0.0);
    }
    m.add_constr(request, Cmp::Ge, target_volume);
    (m, xs)
}

/// Solves `PPM(k)` exactly through Linear Program 2.
///
/// Returns `None` when the target is unreachable (uncoverable traffic
/// exceeds `1 - k`).
pub fn solve_ppm_exact(inst: &PpmInstance, k: f64, opts: &ExactOptions) -> Option<PpmSolution> {
    solve_with(inst, k, opts, Formulation::Lp2)
}

/// Solves `PPM(k)` exactly through the arc-path Linear Program 1 (slower;
/// used for cross-validation against LP 2).
pub fn solve_ppm_mecf(inst: &PpmInstance, k: f64, opts: &ExactOptions) -> Option<PpmSolution> {
    solve_with(inst, k, opts, Formulation::Lp1)
}

/// Nodes evaluated per batch-synchronous round of the MIP search. A fixed
/// constant (not a function of the worker count) so the branch-and-bound
/// trajectory — and therefore every solution and CSV derived from it — is
/// identical whether the node LPs run on 1 thread or 16.
const EXACT_NODE_BATCH: usize = 8;

/// Which of the paper's two MIP formulations to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Formulation {
    /// Linear Program 2 (compact x/δ form) — the default.
    Lp2,
    /// Linear Program 1 (arc-path MECF form) — cross-validation.
    Lp1,
}

fn solve_with(
    inst: &PpmInstance,
    k: f64,
    opts: &ExactOptions,
    formulation: Formulation,
) -> Option<PpmSolution> {
    match solve_with_anytime(inst, k, opts, formulation) {
        Anytime::Done(sol) => sol,
        // Legacy surface under a budget: degrade silently to the best
        // answer available (the unified API reports the record instead).
        Anytime::Cut { incumbent, .. } => incumbent
            .flatten()
            .or_else(|| crate::solve::greedy_constrained(inst, &[], &[], k)),
    }
}

/// The one-shot exact LP2 kernel under the anytime contract, for the
/// unified dispatcher ([`crate::solve::solve_instance`]).
pub(crate) fn solve_ppm_exact_anytime(
    inst: &PpmInstance,
    k: f64,
    opts: &ExactOptions,
) -> Anytime<Option<PpmSolution>> {
    solve_with_anytime(inst, k, opts, Formulation::Lp2)
}

fn solve_with_anytime(
    inst: &PpmInstance,
    k: f64,
    opts: &ExactOptions,
    formulation: Formulation,
) -> Anytime<Option<PpmSolution>> {
    assert!(
        k.is_finite() && (0.0..=1.0 + 1e-12).contains(&k),
        "monitoring fraction k must lie in [0, 1], got {k}"
    );
    // The coverage target is k of the ORIGINAL volume; merging only drops
    // traffics that cannot be covered anyway, and the target must not
    // weaken with them.
    let target = k * inst.total_volume();
    if target > inst.max_coverage_fraction() * inst.total_volume() + 1e-9 {
        return Anytime::Done(None);
    }
    let merged = inst.merged();
    let (mut model, xs) = match formulation {
        Formulation::Lp2 => build_lp2_target(&merged, target),
        Formulation::Lp1 => build_lp1_target(&merged, target),
    };

    if opts.warm_start {
        install_greedy_incumbent(&mut model, &xs, inst, &merged, k);
    }

    let mip_opts = MipOptions {
        max_nodes: opts.max_nodes,
        time_limit: opts.time_limit,
        rel_gap: opts.rel_gap,
        // Device count is integral: round LP bounds up.
        integral_objective: Some(true),
        // Node LPs differ from their parent by one bound: reuse the basis.
        warm_basis: true,
        // Solve node LPs in parallel (POPMON_THREADS-aware). The batch
        // size is a FIXED constant, never derived from the thread count:
        // search decisions depend only on the batch, so CSV and golden
        // outputs stay byte-identical at any `threads` setting.
        threads: 0,
        node_batch: EXACT_NODE_BATCH,
        work_budget: opts.work_budget,
        ..Default::default()
    };
    let extract = |sol: &milp::Solution| -> Vec<usize> {
        (0..merged.num_edges)
            .filter(|&e| sol.is_one(xs[e], 1e-4))
            .collect()
    };
    let outcome = match model.solve_mip_anytime(&mip_opts, None) {
        Ok((out, _)) => out,
        Err(milp::SolverError::Infeasible) => return Anytime::Done(None),
        Err(e) => panic!("MIP solver failed unexpectedly: {e}"),
    };
    match outcome {
        MipOutcome::Complete(sol) => {
            let proven = sol.status == SolveStatus::Optimal;
            let solution = PpmSolution::from_edges(inst, extract(&sol), proven);
            debug_assert!(
                inst.is_feasible(&solution.edges, k),
                "exact solver produced an infeasible selection: coverage {} < {}",
                solution.coverage,
                target
            );
            Anytime::Done(Some(solution))
        }
        MipOutcome::Interrupted {
            incumbent,
            bound,
            work_spent,
        } => Anytime::Cut {
            incumbent: incumbent
                .map(|sol| Some(PpmSolution::from_edges(inst, extract(&sol), false))),
            bound,
            work_spent,
        },
    }
}

/// Seeds `model` with the better of the two greedy solutions on the
/// original instance (which carries the correct target semantics) as the
/// branch-and-bound's initial incumbent. Shared by the one-shot exact
/// solver and the warm-started sweep chains of [`crate::delta`].
pub(crate) fn install_greedy_incumbent(
    model: &mut Model,
    xs: &[VarId],
    inst: &PpmInstance,
    merged: &PpmInstance,
    k: f64,
) {
    let warm = match (greedy_static(inst, k), greedy_adaptive(inst, k)) {
        (Some(a), Some(b)) => Some(if a.device_count() <= b.device_count() {
            a
        } else {
            b
        }),
        (a, b) => a.or(b),
    };
    if let Some(w) = warm {
        let mut values = vec![0.0; model.var_count()];
        for &e in &w.edges {
            values[xs[e].index()] = 1.0;
        }
        // Set δ_t consistently: for LP2 the δs are the covered
        // indicator; for LP1 (flow variables) skip the warm start.
        let mut var = inst_delta_offset(model, xs);
        if let Some(delta_start) = var.take() {
            for (t, (_, support)) in merged.traffics.iter().enumerate() {
                let covered = support.iter().any(|&e| w.edges.contains(&e));
                values[delta_start + t] = if covered { 1.0 } else { 0.0 };
            }
            model.set_initial_solution(values);
        }
    }
}

/// For LP2-shaped models the δ variables start right after the x block;
/// detect that by name so the warm start can fill them. Returns `None` for
/// LP1-shaped models (flow variables), where warm starts are skipped.
fn inst_delta_offset(model: &Model, xs: &[VarId]) -> Option<usize> {
    let first = xs.len();
    if first < model.var_count() && model.var_name(model.var(first)).starts_with("delta") {
        Some(first)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::fixture_figure3;
    use crate::passive::brute_force_ppm;

    #[test]
    fn figure3_optimum_is_two() {
        let inst = fixture_figure3();
        let s = solve_ppm_exact(&inst, 1.0, &ExactOptions::default()).unwrap();
        assert_eq!(
            s.device_count(),
            2,
            "optimal solution uses the two load-3 links"
        );
        assert_eq!(s.edges, vec![1, 2]);
        assert!(s.proven_optimal);
    }

    #[test]
    fn lp1_agrees_with_lp2_on_figure3() {
        let inst = fixture_figure3();
        for k in [0.5, 0.75, 1.0] {
            let a = solve_ppm_exact(&inst, k, &ExactOptions::default()).unwrap();
            let b = solve_ppm_mecf(&inst, k, &ExactOptions::default()).unwrap();
            assert_eq!(a.device_count(), b.device_count(), "k = {k}");
        }
    }

    #[test]
    fn matches_brute_force_on_small_instances() {
        let instances = vec![
            fixture_figure3(),
            crate::instance::PpmInstance::new(
                4,
                vec![
                    (3.0, vec![0]),
                    (2.0, vec![1, 2]),
                    (2.0, vec![2, 3]),
                    (1.0, vec![0, 3]),
                ],
            ),
        ];
        for inst in instances {
            for k in [0.4, 0.7, 0.9, 1.0] {
                let exact = solve_ppm_exact(&inst, k, &ExactOptions::default()).unwrap();
                let brute = brute_force_ppm(&inst, k).unwrap();
                assert_eq!(
                    exact.device_count(),
                    brute.device_count(),
                    "k = {k}, exact {:?} vs brute {:?}",
                    exact.edges,
                    brute.edges
                );
            }
        }
    }

    #[test]
    fn exact_never_beaten_by_greedy() {
        let inst = fixture_figure3();
        for k in [0.5, 0.8, 1.0] {
            let exact = solve_ppm_exact(&inst, k, &ExactOptions::default()).unwrap();
            for g in [
                crate::passive::greedy_static(&inst, k).unwrap(),
                crate::passive::greedy_adaptive(&inst, k).unwrap(),
            ] {
                assert!(exact.device_count() <= g.device_count());
            }
            assert!(inst.is_feasible(&exact.edges, k));
        }
    }

    #[test]
    fn unreachable_target_returns_none() {
        let inst = crate::instance::PpmInstance::new(1, vec![(1.0, vec![0]), (1.0, vec![])]);
        assert!(solve_ppm_exact(&inst, 1.0, &ExactOptions::default()).is_none());
        assert!(solve_ppm_exact(&inst, 0.5, &ExactOptions::default()).is_some());
    }

    #[test]
    fn zero_k_is_empty_solution() {
        let inst = fixture_figure3();
        let s = solve_ppm_exact(&inst, 0.0, &ExactOptions::default()).unwrap();
        assert_eq!(s.device_count(), 0);
    }

    #[test]
    fn no_warm_start_still_optimal() {
        let inst = fixture_figure3();
        let opts = ExactOptions {
            warm_start: false,
            ..Default::default()
        };
        let s = solve_ppm_exact(&inst, 1.0, &opts).unwrap();
        assert_eq!(s.device_count(), 2);
    }

    #[test]
    fn pop_instance_exact_beats_greedy_weakly() {
        let pop = popgen::PopSpec::paper_10().build();
        let ts = popgen::TrafficSpec::default().generate(&pop, 17);
        let inst = crate::instance::PpmInstance::from_traffic(&pop.graph, &ts);
        let k = 0.9;
        let exact = solve_ppm_exact(&inst, k, &ExactOptions::default()).unwrap();
        let greedy = crate::passive::greedy_static(&inst, k).unwrap();
        assert!(inst.is_feasible(&exact.edges, k));
        assert!(exact.device_count() <= greedy.device_count());
        assert!(exact.proven_optimal);
    }
}
