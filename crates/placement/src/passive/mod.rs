//! `PPM(k)` solvers: greedy heuristics, exact MIPs, and deployment
//! variants (paper Sections 4.3–4.4).

mod brute;
mod exact;
mod greedy;
mod mecf_bb;
mod variants;

pub use brute::brute_force_ppm;
pub use exact::{
    build_lp1, build_lp1_target, build_lp2, build_lp2_target, solve_ppm_exact, solve_ppm_mecf,
    ExactOptions,
};
pub(crate) use exact::{install_greedy_incumbent, solve_ppm_exact_anytime};
pub use greedy::{flow_greedy_ppm, greedy_adaptive, greedy_static};
pub use mecf_bb::solve_ppm_mecf_bb;
pub(crate) use variants::{build_budget_model, solve_budget_anytime};
pub use variants::{expected_gain, solve_budget, solve_incremental, BudgetSolution};

use crate::instance::PpmInstance;

/// A solution to `PPM(k)`: the selected monitor links plus bookkeeping.
#[derive(Debug, Clone, PartialEq)]
pub struct PpmSolution {
    /// Selected edge indices, sorted.
    pub edges: Vec<usize>,
    /// Volume covered by the selection.
    pub coverage: f64,
    /// Total volume `V` of the instance.
    pub total_volume: f64,
    /// `true` when the solution is proven optimal (exact solvers with a
    /// completed search); heuristics always report `false`.
    pub proven_optimal: bool,
}

impl PpmSolution {
    /// Builds a solution from a device set, computing its coverage on
    /// `inst` (sorts and deduplicates the edges).
    pub fn from_edges(inst: &PpmInstance, mut edges: Vec<usize>, proven: bool) -> Self {
        edges.sort_unstable();
        edges.dedup();
        let coverage = inst.coverage(&edges);
        Self {
            edges,
            coverage,
            total_volume: inst.total_volume(),
            proven_optimal: proven,
        }
    }

    /// Number of monitoring devices used.
    pub fn device_count(&self) -> usize {
        self.edges.len()
    }

    /// Fraction of the total volume covered (0 when the instance is empty).
    pub fn coverage_fraction(&self) -> f64 {
        if self.total_volume > 0.0 {
            self.coverage / self.total_volume
        } else {
            0.0
        }
    }
}
