//! Measurement campaigns — the paper's third future-work item (Section 7):
//! *"we are investigating on solutions for measurement campaign, where the
//! operator of a POP or an AS can modify the routing strategy in order to
//! maximize the monitoring ratio, given a set of already installed
//! measurement points. For this last perspective, the flow-based model is
//! expected to apply perfectly."*
//!
//! Model: the deployment is fixed; for each traffic the operator may pick
//! **one** route among a small candidate set (the `K` shortest loopless
//! paths — deviating further would violate the IGP's service quality). A
//! traffic is monitored when its chosen route crosses an installed link.
//! Maximize the monitored volume; optionally bound the total *stretch*
//! (extra routed cost versus the shortest path) the campaign may introduce.
//!
//! Two solvers:
//!
//! * [`campaign_greedy`] — for each unmonitored traffic independently, pick
//!   the cheapest candidate route that crosses a monitor (no global budget
//!   coupling: optimal when `max_total_stretch` is infinite);
//! * [`campaign_exact`] — 0–1 program choosing one route per traffic under
//!   the global stretch budget (knapsack-coupled, solved by `milp`).

use milp::{Cmp, MipOptions, Model, Sense, SolveStatus, VarId, VarKind};
use netgraph::{ksp, Graph, NodeId};
use popgen::TrafficSet;

/// One traffic of the campaign problem with its candidate routes.
#[derive(Debug, Clone)]
pub struct CampaignTraffic {
    /// Entry endpoint (for reporting).
    pub src: NodeId,
    /// Exit endpoint.
    pub dst: NodeId,
    /// Bandwidth.
    pub volume: f64,
    /// Candidate routes as `(edge indices, routing cost)`; index 0 is the
    /// current (shortest) route.
    pub routes: Vec<(Vec<usize>, f64)>,
}

/// A campaign instance: fixed monitors plus per-traffic route choices.
#[derive(Debug, Clone)]
pub struct CampaignProblem {
    /// Installed monitors (mask over edges).
    pub installed: Vec<bool>,
    /// The traffics with their candidate routes.
    pub traffics: Vec<CampaignTraffic>,
    /// Upper bound on `Σ_t v_t · (cost(chosen_t) − cost(shortest_t))`;
    /// `f64::INFINITY` disables the budget.
    pub max_total_stretch: f64,
}

impl CampaignProblem {
    /// Builds the problem from a routed traffic set: each traffic gets its
    /// `k_routes` shortest loopless paths as candidates.
    pub fn new(
        graph: &Graph,
        ts: &TrafficSet,
        installed: Vec<bool>,
        k_routes: usize,
        max_total_stretch: f64,
    ) -> Self {
        assert_eq!(installed.len(), graph.edge_count(), "one flag per link");
        assert!(k_routes >= 1, "need at least the current route");
        let traffics = ts
            .traffics
            .iter()
            .map(|t| {
                let paths =
                    ksp::k_shortest_paths(graph, t.src, t.dst, k_routes).expect("valid endpoints");
                let routes = paths
                    .into_iter()
                    .map(|p| {
                        let cost = p.cost(graph);
                        (p.edges().iter().map(|e| e.index()).collect(), cost)
                    })
                    .collect();
                CampaignTraffic {
                    src: t.src,
                    dst: t.dst,
                    volume: t.volume,
                    routes,
                }
            })
            .collect();
        Self {
            installed,
            traffics,
            max_total_stretch,
        }
    }

    /// `true` when route `r` of traffic `t` crosses an installed monitor.
    pub fn route_monitored(&self, t: usize, r: usize) -> bool {
        self.traffics[t].routes[r]
            .0
            .iter()
            .any(|&e| self.installed[e])
    }

    /// Volume-weighted stretch of assigning route `r` to traffic `t`.
    pub fn stretch(&self, t: usize, r: usize) -> f64 {
        let tr = &self.traffics[t];
        tr.volume * (tr.routes[r].1 - tr.routes[0].1).max(0.0)
    }

    /// Monitored volume and total stretch of a route assignment.
    pub fn evaluate(&self, assignment: &[usize]) -> (f64, f64) {
        assert_eq!(
            assignment.len(),
            self.traffics.len(),
            "one route per traffic"
        );
        let mut monitored = 0.0;
        let mut stretch = 0.0;
        for (t, &r) in assignment.iter().enumerate() {
            assert!(
                r < self.traffics[t].routes.len(),
                "route index out of range"
            );
            if self.route_monitored(t, r) {
                monitored += self.traffics[t].volume;
            }
            stretch += self.stretch(t, r);
        }
        (monitored, stretch)
    }

    /// Total volume of the instance.
    pub fn total_volume(&self) -> f64 {
        self.traffics.iter().map(|t| t.volume).sum()
    }
}

/// Result of a campaign optimization.
#[derive(Debug, Clone)]
pub struct CampaignSolution {
    /// Chosen route index per traffic (0 = keep the current route).
    pub assignment: Vec<usize>,
    /// Monitored volume under the assignment.
    pub monitored: f64,
    /// Volume-weighted total stretch introduced.
    pub total_stretch: f64,
    /// Whether the solver proved optimality (greedy reports `true` only in
    /// the uncoupled, budget-free case where it *is* optimal).
    pub proven_optimal: bool,
}

/// Greedy campaign: every traffic whose current route is unmonitored moves
/// to its cheapest-stretch monitored candidate, if any. With an infinite
/// stretch budget the per-traffic choices are independent, so this is
/// optimal; under a finite budget moves are applied in increasing
/// stretch-per-volume order until the budget runs out (a heuristic).
pub fn campaign_greedy(prob: &CampaignProblem) -> CampaignSolution {
    let n = prob.traffics.len();
    let mut assignment = vec![0usize; n];
    // Candidate moves: (stretch, volume, traffic, route).
    let mut moves: Vec<(f64, f64, usize, usize)> = Vec::new();
    for t in 0..n {
        if prob.route_monitored(t, 0) {
            continue; // already monitored in place
        }
        let best = (0..prob.traffics[t].routes.len())
            .filter(|&r| prob.route_monitored(t, r))
            .map(|r| (prob.stretch(t, r), r))
            .min_by(|a, b| a.0.partial_cmp(&b.0).expect("finite stretch"));
        if let Some((s, r)) = best {
            moves.push((s, prob.traffics[t].volume, t, r));
        }
    }
    // Cheapest stretch per monitored volume first.
    moves.sort_by(|a, b| {
        (a.0 / a.1.max(1e-12))
            .partial_cmp(&(b.0 / b.1.max(1e-12)))
            .expect("finite")
    });
    let mut budget = prob.max_total_stretch;
    for (s, _, t, r) in moves {
        if s <= budget {
            assignment[t] = r;
            budget -= s;
        }
    }
    let (monitored, total_stretch) = prob.evaluate(&assignment);
    CampaignSolution {
        assignment,
        monitored,
        total_stretch,
        proven_optimal: prob.max_total_stretch.is_infinite(),
    }
}

/// Exact campaign: one binary per (traffic, candidate route), exactly one
/// route per traffic, maximize monitored volume subject to the stretch
/// budget.
pub fn campaign_exact(prob: &CampaignProblem, opts: &MipOptions) -> CampaignSolution {
    let mut m = Model::new(Sense::Maximize);
    let mut vars: Vec<Vec<VarId>> = Vec::with_capacity(prob.traffics.len());
    let mut budget_terms: Vec<(VarId, f64)> = Vec::new();
    for (t, tr) in prob.traffics.iter().enumerate() {
        let mut row = Vec::with_capacity(tr.routes.len());
        for r in 0..tr.routes.len() {
            let gain = if prob.route_monitored(t, r) {
                tr.volume
            } else {
                0.0
            };
            let y = m.add_var(format!("y_t{t}_r{r}"), VarKind::Binary, 0.0, 1.0, gain);
            let s = prob.stretch(t, r);
            if s > 0.0 {
                budget_terms.push((y, s));
            }
            row.push(y);
        }
        let one: Vec<_> = row.iter().map(|&y| (y, 1.0)).collect();
        m.add_constr(one, Cmp::Eq, 1.0);
        vars.push(row);
    }
    if prob.max_total_stretch.is_finite() {
        m.add_constr(budget_terms, Cmp::Le, prob.max_total_stretch);
    }
    let sol = m
        .solve_mip_with(opts)
        .expect("choosing route 0 everywhere is feasible");
    let assignment: Vec<usize> = vars
        .iter()
        .map(|row| {
            row.iter()
                .position(|&y| sol.is_one(y, 1e-4))
                .expect("exactly-one constraint guarantees a pick")
        })
        .collect();
    let (monitored, total_stretch) = prob.evaluate(&assignment);
    CampaignSolution {
        assignment,
        monitored,
        total_stretch,
        proven_optimal: sol.status == SolveStatus::Optimal,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::PpmInstance;
    use crate::passive::{solve_ppm_exact, ExactOptions};
    use popgen::{PopSpec, TrafficSpec};

    fn setup(k: f64) -> (popgen::Pop, TrafficSet, Vec<bool>) {
        // Seed 1 is a case where the shortest-path deployment leaves
        // recapturable traffic on alternate routes (verified below).
        let pop = PopSpec::paper_10().build();
        let ts = TrafficSpec::default().generate(&pop, 1);
        let inst = PpmInstance::from_traffic(&pop.graph, &ts);
        let sol = solve_ppm_exact(&inst, k, &ExactOptions::default()).unwrap();
        let mut installed = vec![false; pop.graph.edge_count()];
        for &e in &sol.edges {
            installed[e] = true;
        }
        (pop, ts, installed)
    }

    #[test]
    fn rerouting_strictly_improves_coverage() {
        // Devices placed for 80%: some traffics are unmonitored on their
        // shortest route, and alternative routes recapture part of them.
        let (pop, ts, installed) = setup(0.8);
        let prob = CampaignProblem::new(&pop.graph, &ts, installed, 3, f64::INFINITY);
        let before = prob.evaluate(&vec![0; prob.traffics.len()]).0;
        let after = campaign_greedy(&prob);
        assert!(
            after.monitored > before + 1e-9,
            "campaign should recapture volume: {before} -> {}",
            after.monitored
        );
        assert!(after.proven_optimal);
    }

    #[test]
    fn greedy_is_optimal_without_budget() {
        let (pop, ts, installed) = setup(0.75);
        let prob = CampaignProblem::new(&pop.graph, &ts, installed, 3, f64::INFINITY);
        let g = campaign_greedy(&prob);
        let e = campaign_exact(&prob, &MipOptions::default());
        assert!((g.monitored - e.monitored).abs() < 1e-6);
    }

    #[test]
    fn exact_beats_greedy_under_tight_budget() {
        let (pop, ts, installed) = setup(0.75);
        let free = CampaignProblem::new(&pop.graph, &ts, installed.clone(), 3, f64::INFINITY);
        let unconstrained = campaign_greedy(&free);
        // Allow only a fifth of the unconstrained stretch.
        let budget = unconstrained.total_stretch / 5.0;
        let prob = CampaignProblem::new(&pop.graph, &ts, installed, 3, budget);
        let g = campaign_greedy(&prob);
        let e = campaign_exact(&prob, &MipOptions::default());
        assert!(g.total_stretch <= budget + 1e-9);
        assert!(e.total_stretch <= budget + 1e-9);
        assert!(
            e.monitored + 1e-6 >= g.monitored,
            "exact dominates the heuristic"
        );
    }

    #[test]
    fn zero_budget_keeps_current_routes() {
        let (pop, ts, installed) = setup(0.8);
        let prob = CampaignProblem::new(&pop.graph, &ts, installed, 3, 0.0);
        let g = campaign_greedy(&prob);
        // Only zero-stretch moves (equal-cost alternates) are allowed.
        assert_eq!(g.total_stretch, 0.0);
        let e = campaign_exact(&prob, &MipOptions::default());
        assert!(e.total_stretch <= 1e-9);
    }

    #[test]
    fn full_deployment_needs_no_campaign() {
        let pop = PopSpec::paper_10().build();
        let ts = TrafficSpec::default().generate(&pop, 13);
        let installed = vec![true; pop.graph.edge_count()];
        let prob = CampaignProblem::new(&pop.graph, &ts, installed, 2, f64::INFINITY);
        let g = campaign_greedy(&prob);
        assert!(
            g.assignment.iter().all(|&r| r == 0),
            "everything already monitored"
        );
        assert!((g.monitored - prob.total_volume()).abs() < 1e-9);
    }

    #[test]
    fn evaluate_checks_arity() {
        let (pop, ts, installed) = setup(0.8);
        let prob = CampaignProblem::new(&pop.graph, &ts, installed, 2, f64::INFINITY);
        let result = std::panic::catch_unwind(|| prob.evaluate(&[0]));
        assert!(result.is_err(), "wrong arity must panic");
    }
}
