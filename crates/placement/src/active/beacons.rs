//! Beacon placement: given the probe set Φ, choose the fewest beacons such
//! that every probe has a beacon at one of its extremities (paper Section
//! 6.1).
//!
//! Three strategies, matching the three curves of Figures 9–11:
//!
//! * [`place_beacons_thiran`] — the heuristic of \[15\]: repeatedly pick an
//!   *arbitrary* useful candidate (here: smallest id, which is what an
//!   implementation without optimization effort does), remove the probes
//!   it can send, repeat;
//! * [`place_beacons_greedy`] — the paper's improved greedy: pick the
//!   candidate that can send the most remaining probes first;
//! * [`place_beacons_ilp`] — the paper's exact `0–1` program:
//!
//! ```text
//! minimize   Σ_i y_i
//! subject to y_i = 0                 ∀ i ∈ V \ V_B
//!            y_{ϕ_u} + y_{ϕ_v} ≥ 1   ∀ ϕ ∈ Φ
//!            y_i ∈ {0, 1}
//! ```

use milp::{Cmp, MipOptions, Model, Sense, SolveStatus, VarId, VarKind};
use netgraph::{Graph, NodeId};

use crate::active::probes::ProbeSet;

/// A beacon placement with provenance.
#[derive(Debug, Clone)]
pub struct BeaconPlacement {
    /// Selected beacon nodes, sorted by id.
    pub beacons: Vec<NodeId>,
    /// `true` for the ILP when branch-and-bound completed.
    pub proven_optimal: bool,
}

impl BeaconPlacement {
    fn new(mut beacons: Vec<NodeId>, proven: bool) -> Self {
        beacons.sort_unstable();
        beacons.dedup();
        Self {
            beacons,
            proven_optimal: proven,
        }
    }

    /// Number of beacons placed.
    pub fn len(&self) -> usize {
        self.beacons.len()
    }

    /// `true` when no beacon is needed (empty Φ).
    pub fn is_empty(&self) -> bool {
        self.beacons.is_empty()
    }

    /// Verifies that every probe of `probes` has an endpoint among the
    /// placed beacons.
    pub fn covers(&self, probes: &ProbeSet) -> bool {
        probes
            .probes
            .iter()
            .all(|p| self.beacons.contains(&p.u) || self.beacons.contains(&p.v))
    }
}

/// The arbitrary-pick heuristic of \[15\]: take the smallest-id candidate
/// that is an endpoint of at least one remaining probe, remove the probes
/// it can send, repeat.
pub fn place_beacons_thiran(probes: &ProbeSet, candidates: &[NodeId]) -> BeaconPlacement {
    let mut remaining: Vec<&crate::active::Probe> = probes.probes.iter().collect();
    let mut sorted = candidates.to_vec();
    sorted.sort_unstable();
    let mut beacons = Vec::new();
    while !remaining.is_empty() {
        let pick = sorted
            .iter()
            .copied()
            .find(|&c| remaining.iter().any(|p| p.u == c || p.v == c))
            .expect("probe endpoints are candidates");
        beacons.push(pick);
        remaining.retain(|p| p.u != pick && p.v != pick);
    }
    BeaconPlacement::new(beacons, false)
}

/// The paper's improved greedy: pick the candidate generating the most
/// remaining probes first ("we can select the beacon that will generate the
/// greatest number of probes first, then remove these probes from the set
/// of probes, and so on").
pub fn place_beacons_greedy(probes: &ProbeSet, candidates: &[NodeId]) -> BeaconPlacement {
    let mut remaining: Vec<&crate::active::Probe> = probes.probes.iter().collect();
    let mut sorted = candidates.to_vec();
    sorted.sort_unstable();
    let mut beacons = Vec::new();
    while !remaining.is_empty() {
        let (pick, count) = sorted
            .iter()
            .copied()
            .map(|c| (c, remaining.iter().filter(|p| p.u == c || p.v == c).count()))
            .max_by_key(|&(c, n)| (n, std::cmp::Reverse(c)))
            .expect("candidates non-empty while probes remain");
        assert!(count > 0, "probe endpoints are candidates");
        beacons.push(pick);
        remaining.retain(|p| p.u != pick && p.v != pick);
    }
    BeaconPlacement::new(beacons, false)
}

/// The exact ILP of Section 6.1 (a restricted minimum vertex cover over
/// the probe endpoints). `graph` provides the full vertex set `V` so the
/// forbidden-vertex constraints `y_i = 0, i ∈ V \ V_B` can be stated as in
/// the paper.
pub fn place_beacons_ilp(
    graph: &Graph,
    probes: &ProbeSet,
    candidates: &[NodeId],
) -> BeaconPlacement {
    let mut m = Model::new(Sense::Minimize);
    let ys: Vec<VarId> = graph
        .nodes()
        .map(|v| m.add_var(format!("y_{}", v.index()), VarKind::Binary, 0.0, 1.0, 1.0))
        .collect();
    // y_i = 0 for i ∉ V_B.
    for v in graph.nodes() {
        if !candidates.contains(&v) {
            m.fix_var(ys[v.index()], 0.0);
        }
    }
    // y_u + y_v ≥ 1 per probe.
    for p in &probes.probes {
        m.add_constr(
            vec![(ys[p.u.index()], 1.0), (ys[p.v.index()], 1.0)],
            Cmp::Ge,
            1.0,
        );
    }
    let opts = MipOptions {
        integral_objective: Some(true),
        ..Default::default()
    };
    let sol = m
        .solve_mip_with(&opts)
        .expect("vertex cover over probe endpoints is feasible");
    let beacons: Vec<NodeId> = graph
        .nodes()
        .filter(|v| sol.is_one(ys[v.index()], 1e-4))
        .collect();
    BeaconPlacement::new(beacons, sol.status == SolveStatus::Optimal)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::active::compute_probes;
    use netgraph::GraphBuilder;
    use popgen::PopSpec;

    /// A star: probes between leaves all pass the hub but their endpoints
    /// are leaves, so beacon counts differ sharply between strategies.
    fn star(leaves: usize) -> (Graph, Vec<NodeId>) {
        let mut b = GraphBuilder::new();
        let hub = b.add_node("hub");
        let ls: Vec<NodeId> = (0..leaves).map(|i| b.add_node(format!("l{i}"))).collect();
        for &l in &ls {
            b.add_edge(hub, l, 1.0);
        }
        let mut all = vec![hub];
        all.extend(&ls);
        (b.build(), all)
    }

    #[test]
    fn all_strategies_cover_all_probes() {
        let pop = PopSpec::paper_15().build();
        let (g, _) = pop.router_subgraph();
        let candidates: Vec<NodeId> = g.nodes().collect();
        let probes = compute_probes(&g, &candidates);
        assert!(!probes.is_empty());
        for placement in [
            place_beacons_thiran(&probes, &candidates),
            place_beacons_greedy(&probes, &candidates),
            place_beacons_ilp(&g, &probes, &candidates),
        ] {
            assert!(placement.covers(&probes));
        }
    }

    #[test]
    fn ilp_never_worse_than_heuristics() {
        let pop = PopSpec::paper_15().build();
        let (g, _) = pop.router_subgraph();
        let all: Vec<NodeId> = g.nodes().collect();
        for size in [4, 8, 12, 15] {
            let candidates = &all[..size];
            let probes = compute_probes(&g, candidates);
            let thiran = place_beacons_thiran(&probes, candidates);
            let greedy = place_beacons_greedy(&probes, candidates);
            let ilp = place_beacons_ilp(&g, &probes, candidates);
            assert!(ilp.proven_optimal);
            assert!(ilp.len() <= greedy.len(), "|V_B| = {size}");
            assert!(ilp.len() <= thiran.len(), "|V_B| = {size}");
        }
    }

    #[test]
    fn star_graph_hub_is_not_an_endpoint() {
        // Probes join leaves; with all nodes candidates, the ILP must pick
        // about half the leaves (vertex cover of the probe graph).
        let (g, all) = star(4);
        let probes = compute_probes(&g, &all);
        let ilp = place_beacons_ilp(&g, &probes, &all);
        assert!(ilp.covers(&probes));
        // The hub covers no probe (it is never an extremity here): the
        // greedy pile-up baits Thiran into more beacons than the ILP.
        let thiran = place_beacons_thiran(&probes, &all);
        assert!(thiran.len() >= ilp.len());
    }

    #[test]
    fn empty_probe_set_places_nothing() {
        let (g, all) = star(3);
        let probes = compute_probes(&g, &all[..1]); // single candidate, no probes
        assert!(probes.is_empty());
        assert!(place_beacons_thiran(&probes, &all[..1]).is_empty());
        assert!(place_beacons_greedy(&probes, &all[..1]).is_empty());
        assert!(place_beacons_ilp(&g, &probes, &all[..1]).is_empty());
    }

    #[test]
    fn non_candidates_never_selected() {
        let pop = PopSpec::paper_10().build();
        let (g, _) = pop.router_subgraph();
        let all: Vec<NodeId> = g.nodes().collect();
        let candidates = &all[..5];
        let probes = compute_probes(&g, candidates);
        for placement in [
            place_beacons_thiran(&probes, candidates),
            place_beacons_greedy(&probes, candidates),
            place_beacons_ilp(&g, &probes, candidates),
        ] {
            for b in &placement.beacons {
                assert!(candidates.contains(b));
            }
        }
    }

    #[test]
    fn greedy_beats_thiran_on_a_crafted_instance() {
        // Path 0-1-2-3-4; candidates all. Probes (0,1),(0,2),(3,4) say —
        // construct via probe set directly to control the shape.
        let (g, _) = star(1); // placeholder graph; probes built by hand
        let mk = |u: u32, v: u32| crate::active::Probe {
            u: NodeId(u.min(v)),
            v: NodeId(u.max(v)),
            edges: vec![],
        };
        let probes = ProbeSet {
            probes: vec![mk(0, 1), mk(1, 2), mk(1, 3), mk(0, 4)],
            covered: vec![],
            uncoverable: vec![],
        };
        let candidates: Vec<NodeId> = (0..5).map(NodeId).collect();
        let thiran = place_beacons_thiran(&probes, &candidates);
        let greedy = place_beacons_greedy(&probes, &candidates);
        // Thiran picks node 0 first (smallest id, covers 2 probes), then 1
        // (covers 2): 2 beacons. Greedy picks 1 (3 probes) then 0: also 2.
        // Both cover; greedy must not be worse.
        assert!(greedy.len() <= thiran.len());
        let _ = g;
    }
}
