//! Probe-set computation — a reconstruction of the polynomial algorithm of
//! \[15\] (Nguyen & Thiran, *Active Measurement for Multiple Link Failures
//! Diagnosis in IP Networks*, PAM 2004).
//!
//! The paper treats that algorithm as a black box: *"Assume that Φ is the
//! optimal set of probes obtained with the algorithm of \[15\]. Each probe
//! ϕ ∈ Φ is identified by its two extremities ϕ_u and ϕ_v."* What the
//! placement phase needs from Φ is (a) probe endpoints lie in the candidate
//! set `V_B`, and (b) the probes collectively cover the links under
//! supervision. We reconstruct Φ accordingly: candidate probes are the
//! shortest routed paths between pairs of candidate beacons, and a
//! polynomial greedy cover selects a small probe set covering every
//! coverable link. All three placement strategies consume the *same* Φ,
//! exactly as in the paper's Figures 9–11. (Documented as a substitution
//! in `DESIGN.md`.)

use netgraph::{dijkstra, EdgeId, Graph, NodeId};

use crate::setcover::{greedy_partial_cover, SetCoverInstance};

/// A probe: an undirected measurement path identified by its extremities
/// (`(u, v)` equals `(v, u)`, normalized to `u < v`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Probe {
    /// One extremity (`ϕ_u`), the smaller node id.
    pub u: NodeId,
    /// The other extremity (`ϕ_v`).
    pub v: NodeId,
    /// Links traversed by the probe's path.
    pub edges: Vec<EdgeId>,
}

/// The probe set Φ plus coverage bookkeeping.
#[derive(Debug, Clone)]
pub struct ProbeSet {
    /// Selected probes.
    pub probes: Vec<Probe>,
    /// Links covered by Φ (mask over edge ids).
    pub covered: Vec<bool>,
    /// Links that *no* candidate-pair path traverses — uncoverable with
    /// this `V_B` (e.g. links hanging off non-candidate degree-1 nodes).
    pub uncoverable: Vec<EdgeId>,
}

impl ProbeSet {
    /// Number of probes in Φ.
    pub fn len(&self) -> usize {
        self.probes.len()
    }

    /// `true` when Φ is empty (fewer than two candidates, say).
    pub fn is_empty(&self) -> bool {
        self.probes.is_empty()
    }
}

/// Computes the probe set Φ for candidate beacons `candidates`.
///
/// Candidate probes are shortest paths between every unordered candidate
/// pair (deterministic tie-breaking); the greedy set cover then picks a
/// minimal subset covering every coverable link.
///
/// # Panics
///
/// Panics on out-of-range candidate nodes or duplicates.
pub fn compute_probes(graph: &Graph, candidates: &[NodeId]) -> ProbeSet {
    for &c in candidates {
        graph.check_node(c).expect("candidate out of range");
    }
    let mut sorted = candidates.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(
        sorted.len(),
        candidates.len(),
        "duplicate candidate beacons"
    );

    // All candidate-pair shortest paths.
    let mut pool: Vec<Probe> = Vec::new();
    for (i, &u) in sorted.iter().enumerate() {
        let tree = match dijkstra::shortest_path_tree(graph, u) {
            Ok(t) => t,
            Err(_) => continue,
        };
        for &v in &sorted[i + 1..] {
            if let Ok(path) = tree.path_to(graph, v) {
                if !path.is_empty() {
                    pool.push(Probe {
                        u,
                        v,
                        edges: path.edges().to_vec(),
                    });
                }
            }
        }
    }

    // Greedy cover over links: elements = edges, sets = probes.
    let sets: Vec<Vec<usize>> = pool
        .iter()
        .map(|p| p.edges.iter().map(|e| e.index()).collect())
        .collect();
    let inst = SetCoverInstance::unweighted(graph.edge_count(), sets);
    let coverable = inst.max_coverable_weight();
    let cover = greedy_partial_cover(&inst, coverable)
        .expect("covering the coverable weight is always feasible");

    let probes: Vec<Probe> = cover.selection.iter().map(|&i| pool[i].clone()).collect();
    let mut covered = vec![false; graph.edge_count()];
    for p in &probes {
        for &e in &p.edges {
            covered[e.index()] = true;
        }
    }
    // Uncoverable = edges no pooled probe traverses.
    let mut touchable = vec![false; graph.edge_count()];
    for p in &pool {
        for &e in &p.edges {
            touchable[e.index()] = true;
        }
    }
    let uncoverable: Vec<EdgeId> = graph.edges().filter(|e| !touchable[e.index()]).collect();

    ProbeSet {
        probes,
        covered,
        uncoverable,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::GraphBuilder;
    use popgen::PopSpec;

    fn path_graph(n: usize) -> (Graph, Vec<NodeId>) {
        let mut b = GraphBuilder::new();
        let nodes = b.add_nodes("r", n);
        for w in nodes.windows(2) {
            b.add_edge(w[0], w[1], 1.0);
        }
        (b.build(), nodes)
    }

    #[test]
    fn end_to_end_probe_covers_a_path_graph() {
        let (g, nodes) = path_graph(5);
        let ps = compute_probes(&g, &[nodes[0], nodes[4]]);
        assert_eq!(ps.len(), 1, "one end-to-end probe suffices");
        assert!(ps.covered.iter().all(|&c| c));
        assert!(ps.uncoverable.is_empty());
    }

    #[test]
    fn middle_candidates_leave_stubs_uncovered() {
        let (g, nodes) = path_graph(5);
        // Candidates 1 and 3: links 0-1 and 3-4 cannot be probed.
        let ps = compute_probes(&g, &[nodes[1], nodes[3]]);
        assert_eq!(ps.uncoverable.len(), 2);
        assert_eq!(ps.len(), 1);
    }

    #[test]
    fn fewer_than_two_candidates_yields_empty_phi() {
        let (g, nodes) = path_graph(3);
        assert!(compute_probes(&g, &[]).is_empty());
        assert!(compute_probes(&g, &[nodes[1]]).is_empty());
    }

    #[test]
    fn probe_endpoints_are_candidates_and_normalized() {
        let pop = PopSpec::paper_15().build();
        let (g, _) = pop.router_subgraph();
        let candidates: Vec<NodeId> = g.nodes().take(8).collect();
        let ps = compute_probes(&g, &candidates);
        for p in &ps.probes {
            assert!(p.u < p.v, "normalized endpoints");
            assert!(candidates.contains(&p.u));
            assert!(candidates.contains(&p.v));
            assert!(!p.edges.is_empty());
        }
    }

    #[test]
    fn all_routers_as_candidates_cover_everything() {
        let pop = PopSpec::paper_10().build();
        let (g, _) = pop.router_subgraph();
        let candidates: Vec<NodeId> = g.nodes().collect();
        let ps = compute_probes(&g, &candidates);
        assert!(
            ps.uncoverable.is_empty(),
            "full candidate set covers all router links"
        );
        assert!(ps.covered.iter().all(|&c| c));
    }

    #[test]
    fn probe_set_grows_with_candidates() {
        let pop = PopSpec::paper_15().build();
        let (g, _) = pop.router_subgraph();
        let all: Vec<NodeId> = g.nodes().collect();
        let small = compute_probes(&g, &all[..4]);
        let large = compute_probes(&g, &all[..12]);
        let covered_small = small.covered.iter().filter(|&&c| c).count();
        let covered_large = large.covered.iter().filter(|&&c| c).count();
        assert!(covered_large >= covered_small);
    }

    #[test]
    #[should_panic(expected = "duplicate candidate")]
    fn duplicate_candidates_rejected() {
        let (g, nodes) = path_graph(3);
        compute_probes(&g, &[nodes[0], nodes[0]]);
    }
}
