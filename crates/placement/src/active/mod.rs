//! Active monitoring (paper Section 6): probe computation and beacon
//! placement.
//!
//! The network is the undirected router graph `G = (V, E)` with a set of
//! candidate beacon locations `V_B ⊆ V`. Following \[15\] (Nguyen & Thiran,
//! PAM 2004), monitoring proceeds in two phases: first compute an optimal
//! set of probes Φ (paths whose traversal covers the links to supervise),
//! then place the fewest beacons able to send every probe. The paper's
//! contribution is the *placement* phase: a `0–1` ILP and a degree greedy,
//! both beating the arbitrary-choice heuristic of \[15\].

mod assignment;
mod beacons;
mod probes;

pub use assignment::{assign_probes_greedy, assign_probes_ilp, ProbeAssignment};
pub use beacons::{place_beacons_greedy, place_beacons_ilp, place_beacons_thiran, BeaconPlacement};
pub use probes::{compute_probes, Probe, ProbeSet};
