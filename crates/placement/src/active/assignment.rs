//! Probe-to-beacon assignment — the message-cost half of the paper's
//! active-monitoring objective (Section 1: *"to optimize both the number
//! of devices and the number of generated messages"*).
//!
//! After placement, each probe `ϕ = (u, v)` must be *emitted* by a beacon
//! sitting at `u` or `v`. When both extremities host beacons the operator
//! chooses, and the choice shapes the per-beacon message load: probing is
//! periodic, so the busiest beacon bounds the measurement overhead on its
//! access link. Two policies:
//!
//! * [`assign_probes_greedy`] — longest-processing-time style: probes with
//!   a single eligible beacon first, then both-eligible probes to the
//!   currently lighter endpoint;
//! * [`assign_probes_ilp`] — exact makespan minimization (binary choice per
//!   both-eligible probe, an auxiliary max-load variable, solved by
//!   `milp`).

use milp::{Cmp, Model, Sense, VarId, VarKind};
use netgraph::NodeId;

use crate::active::{BeaconPlacement, ProbeSet};

/// A probe-to-beacon assignment.
#[derive(Debug, Clone)]
pub struct ProbeAssignment {
    /// `emitter[i]` is the beacon emitting probe `i` of the probe set.
    pub emitter: Vec<NodeId>,
    /// Messages per beacon, aligned with [`BeaconPlacement::beacons`].
    pub load: Vec<usize>,
    /// The maximum per-beacon load (the makespan being minimized).
    pub max_load: usize,
}

impl ProbeAssignment {
    fn from_emitters(placement: &BeaconPlacement, emitter: Vec<NodeId>) -> Self {
        let mut load = vec![0usize; placement.beacons.len()];
        for b in &emitter {
            let idx = placement
                .beacons
                .iter()
                .position(|x| x == b)
                .expect("emitters are placed beacons");
            load[idx] += 1;
        }
        let max_load = load.iter().copied().max().unwrap_or(0);
        Self {
            emitter,
            load,
            max_load,
        }
    }

    /// Total messages (= number of probes).
    pub fn total_messages(&self) -> usize {
        self.emitter.len()
    }
}

/// Greedy balancing: forced probes (one endpoint hosts a beacon) first,
/// then free probes to the lighter endpoint, heavier-constrained first.
///
/// # Panics
///
/// Panics if some probe has no endpoint among the placed beacons (the
/// placement does not cover the probe set).
pub fn assign_probes_greedy(probes: &ProbeSet, placement: &BeaconPlacement) -> ProbeAssignment {
    let has = |n: NodeId| placement.beacons.contains(&n);
    let mut load: std::collections::HashMap<NodeId, usize> =
        placement.beacons.iter().map(|&b| (b, 0)).collect();
    let mut emitter: Vec<Option<NodeId>> = vec![None; probes.probes.len()];

    // Forced probes first.
    let mut free = Vec::new();
    for (i, p) in probes.probes.iter().enumerate() {
        match (has(p.u), has(p.v)) {
            (true, false) => emitter[i] = Some(p.u),
            (false, true) => emitter[i] = Some(p.v),
            (true, true) => free.push(i),
            (false, false) => panic!("placement does not cover probe ({}, {})", p.u, p.v),
        }
        if let Some(b) = emitter[i] {
            *load.get_mut(&b).expect("beacon exists") += 1;
        }
    }
    // Free probes: assign to the lighter endpoint (ties to the smaller id).
    for i in free {
        let p = &probes.probes[i];
        let (lu, lv) = (load[&p.u], load[&p.v]);
        let pick = if lu < lv || (lu == lv && p.u < p.v) {
            p.u
        } else {
            p.v
        };
        emitter[i] = Some(pick);
        *load.get_mut(&pick).expect("beacon exists") += 1;
    }

    ProbeAssignment::from_emitters(
        placement,
        emitter
            .into_iter()
            .map(|e| e.expect("assigned above"))
            .collect(),
    )
}

/// Exact min-makespan assignment via a small MIP: binary `z_i` per
/// both-eligible probe (0 → `u` emits, 1 → `v` emits) and an integer
/// makespan variable `L ≥ load(b)` for every beacon.
///
/// # Panics
///
/// Panics if the placement does not cover the probe set.
pub fn assign_probes_ilp(probes: &ProbeSet, placement: &BeaconPlacement) -> ProbeAssignment {
    let has = |n: NodeId| placement.beacons.contains(&n);
    let mut m = Model::new(Sense::Minimize);
    let makespan = m.add_var("L", VarKind::Integer, 0.0, probes.probes.len() as f64, 1.0);

    // Per-beacon load terms: constant part (forced probes) + z parts.
    let mut fixed_load: std::collections::HashMap<NodeId, f64> =
        placement.beacons.iter().map(|&b| (b, 0.0)).collect();
    let mut z_terms: std::collections::HashMap<NodeId, Vec<(VarId, f64)>> =
        placement.beacons.iter().map(|&b| (b, Vec::new())).collect();
    let mut choice: Vec<Option<(VarId, NodeId, NodeId)>> = vec![None; probes.probes.len()];

    for (i, p) in probes.probes.iter().enumerate() {
        match (has(p.u), has(p.v)) {
            (true, false) => *fixed_load.get_mut(&p.u).expect("beacon") += 1.0,
            (false, true) => *fixed_load.get_mut(&p.v).expect("beacon") += 1.0,
            (true, true) => {
                let z = m.add_var(format!("z{i}"), VarKind::Binary, 0.0, 1.0, 0.0);
                // z = 0 -> u emits; z = 1 -> v emits.
                z_terms.get_mut(&p.u).expect("beacon").push((z, -1.0)); // (1 - z)
                *fixed_load.get_mut(&p.u).expect("beacon") += 1.0;
                z_terms.get_mut(&p.v).expect("beacon").push((z, 1.0));
                choice[i] = Some((z, p.u, p.v));
            }
            (false, false) => panic!("placement does not cover probe ({}, {})", p.u, p.v),
        }
    }

    for &b in &placement.beacons {
        // load(b) = fixed + Σ z-terms ≤ L.
        let mut terms = z_terms[&b].clone();
        terms.push((makespan, -1.0));
        m.add_constr(terms, Cmp::Le, -fixed_load[&b]);
    }

    let sol = m.solve_mip().expect("assignment is always feasible");
    let emitter: Vec<NodeId> = probes
        .probes
        .iter()
        .enumerate()
        .map(|(i, p)| match choice[i] {
            Some((z, u, v)) => {
                if sol.is_one(z, 1e-4) {
                    v
                } else {
                    u
                }
            }
            None => {
                if has(p.u) {
                    p.u
                } else {
                    p.v
                }
            }
        })
        .collect();
    ProbeAssignment::from_emitters(placement, emitter)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::active::{compute_probes, place_beacons_greedy, place_beacons_ilp};
    use popgen::PopSpec;

    fn setting() -> (netgraph::Graph, Vec<NodeId>) {
        let pop = PopSpec::paper_15().build();
        let (g, _) = pop.router_subgraph();
        let candidates: Vec<NodeId> = g.nodes().collect();
        (g, candidates)
    }

    #[test]
    fn greedy_assignment_is_complete_and_consistent() {
        let (g, candidates) = setting();
        let probes = compute_probes(&g, &candidates);
        let placement = place_beacons_greedy(&probes, &candidates);
        let a = assign_probes_greedy(&probes, &placement);
        assert_eq!(a.total_messages(), probes.len());
        assert_eq!(a.load.iter().sum::<usize>(), probes.len());
        for (p, e) in probes.probes.iter().zip(&a.emitter) {
            assert!(*e == p.u || *e == p.v, "emitter is an extremity");
            assert!(placement.beacons.contains(e), "emitter is a beacon");
        }
    }

    #[test]
    fn ilp_makespan_never_worse_than_greedy() {
        let (g, candidates) = setting();
        let probes = compute_probes(&g, &candidates);
        for placement in [
            place_beacons_greedy(&probes, &candidates),
            place_beacons_ilp(&g, &probes, &candidates),
        ] {
            let greedy = assign_probes_greedy(&probes, &placement);
            let ilp = assign_probes_ilp(&probes, &placement);
            assert!(
                ilp.max_load <= greedy.max_load,
                "ilp {} vs greedy {}",
                ilp.max_load,
                greedy.max_load
            );
            // Loads always bound the mean.
            let mean = probes.len() as f64 / placement.len() as f64;
            assert!(ilp.max_load as f64 + 1e-9 >= mean);
        }
    }

    #[test]
    fn forced_probes_have_no_choice() {
        // Two beacons on a path graph: every probe endpoint pair is the
        // two beacons, so both can emit; makespan must split evenly.
        let mut b = netgraph::GraphBuilder::new();
        let n: Vec<NodeId> = (0..4).map(|i| b.add_node(format!("r{i}"))).collect();
        for w in n.windows(2) {
            b.add_edge(w[0], w[1], 1.0);
        }
        let g = b.build();
        let probes = compute_probes(&g, &[n[0], n[3]]);
        assert_eq!(probes.len(), 1);
        let placement = place_beacons_ilp(&g, &probes, &[n[0], n[3]]);
        let a = assign_probes_ilp(&probes, &placement);
        assert_eq!(a.max_load, 1);
    }

    #[test]
    #[should_panic(expected = "does not cover")]
    fn uncovered_probe_panics() {
        let (g, candidates) = setting();
        let probes = compute_probes(&g, &candidates);
        let empty = BeaconPlacement {
            beacons: vec![],
            proven_optimal: false,
        };
        assign_probes_greedy(&probes, &empty);
    }
}
