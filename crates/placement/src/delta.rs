//! Delta-aware instances: sweep grids as chains of perturbations.
//!
//! Every sweep of the experiment suite re-solves near-identical `PPM`
//! programs: the coverage target `k` walks a grid over one traffic
//! matrix, a budget grows device by device, a link fails and everything
//! else stays put. [`DeltaInstance`] represents that directly — one
//! mutable instance plus a chain of deltas — instead of a fresh
//! [`PpmInstance`] per grid point, and threads two kinds of reuse through
//! the solves:
//!
//! * **warm-started exact solves** — the LP 2 / budget MIPs are built
//!   once per instance structure; successive grid points only move a
//!   right-hand side ([`milp::Model::set_rhs`]) and re-optimize from the
//!   previous point's root basis with the dual simplex
//!   ([`milp::Model::solve_mip_warm`]), with branch-and-bound nodes
//!   reusing their parent's basis;
//! * **delta-aware re-routing** — in routed mode, failing a link re-runs
//!   Yen/Dijkstra only for the traffics whose path actually crossed it
//!   ([`netgraph::delta::RoutePlan`]).
//!
//! Results are *identical* to the one-shot solvers — the chains reuse
//! bases, never answers: a proven-optimal device count is the unique
//! optimum either way (pinned by `tests/delta_chain.rs` against
//! [`solve_ppm_exact`]/[`solve_incremental`]/[`solve_budget`] on the
//! seed-0 sweeps).

use std::collections::HashMap;

use milp::{ConstrId, MipOptions, MipOutcome, MipWarmStart, Model, SolveStatus, VarId};
use netgraph::delta::RoutePlan;
use netgraph::{EdgeId, Graph, NodeId};
use popgen::TrafficSet;

use crate::instance::PpmInstance;
use crate::passive::{
    build_budget_model, build_lp2_target, install_greedy_incumbent, BudgetSolution, ExactOptions,
    PpmSolution,
};
use crate::solve::{Anytime, PlacementError, SolveOutcome, SolveRequest};

/// Routed backing for link toggles: the graph and the delta-aware route
/// plan under the current failures (the failure set itself lives in
/// `DeltaInstance::disabled`; the plan records it as its ban list).
#[derive(Debug, Clone)]
struct Routing {
    graph: Graph,
    plan: RoutePlan,
    /// For each current traffic, the plan pair that routes it — `None`
    /// for flows added later with an explicit support, which are not
    /// endpoint-routed and never re-route. Aligned with
    /// `DeltaInstance::traffics` across flow insertions and removals.
    pair_of: Vec<Option<usize>>,
}

/// A cached exact model: rebuilt when the instance structure changes,
/// re-targeted and warm-started along a grid otherwise. Volume-only and
/// bound-only deltas are *repaired in place* (see the mutation methods),
/// so the warm chain survives what-if streams, not just `k` grids.
#[derive(Debug)]
struct ModelCache {
    merged: PpmInstance,
    model: Model,
    xs: Vec<VarId>,
    warm: Option<MipWarmStart>,
    /// The coverage-target (exact) or budget row — stored at build time so
    /// in-place repairs never have to rediscover it.
    target_row: ConstrId,
    /// Exact cache only: the merged identical-support groups in model row
    /// order, each with the `δ` variable that carries the group's volume
    /// in the coverage row. Empty for the budget cache.
    groups: Vec<(Vec<usize>, VarId)>,
}

/// A `PPM` instance under a chain of deltas (see the module docs).
///
/// Structural mutations (flows added/removed, demands scaled, links
/// toggled) invalidate the cached models; coverage-target and budget
/// moves ride the warm-start chain.
#[derive(Debug, Default)]
pub struct DeltaInstance {
    num_edges: usize,
    /// `(volume, sorted support)` per traffic — the *original* (unmerged)
    /// instance the solvers' coverage semantics are defined on.
    traffics: Vec<(f64, Vec<usize>)>,
    /// Pre-installed devices (`x_e` fixed to 1 at zero cost — the paper's
    /// incremental-deployment setting).
    installed: Vec<usize>,
    /// Links that cannot host a device (`x_e` fixed to 0).
    disabled: Vec<usize>,
    routing: Option<Routing>,
    exact_cache: Option<ModelCache>,
    budget_cache: Option<ModelCache>,
}

impl DeltaInstance {
    /// Starts a chain from an existing instance (no routed backing: link
    /// failures only disable device placement, they cannot re-route).
    pub fn from_instance(inst: &PpmInstance) -> Self {
        DeltaInstance {
            num_edges: inst.num_edges,
            traffics: inst.traffics.clone(),
            ..Default::default()
        }
    }

    /// Starts a *routed* chain: volumes and endpoints come from `ts`, and
    /// every traffic is (re-)routed on `graph` by this instance — along
    /// the crate's deterministic shortest paths, delta-aware under link
    /// failures.
    ///
    /// # Panics
    ///
    /// Panics when `ts` references nodes outside `graph`.
    pub fn from_traffic(graph: &Graph, ts: &TrafficSet) -> Self {
        Self::try_from_traffic(graph, ts).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`DeltaInstance::from_traffic`]: a typed error
    /// instead of a panic when `ts` references nodes outside `graph`.
    pub fn try_from_traffic(graph: &Graph, ts: &TrafficSet) -> Result<Self, PlacementError> {
        let pairs: Vec<(NodeId, NodeId)> = ts.traffics.iter().map(|t| (t.src, t.dst)).collect();
        let plan = RoutePlan::compute(graph, &pairs, 1, &[]).map_err(|e| {
            PlacementError::new("traffic", format!("endpoints outside the graph: {e}"))
        })?;
        let traffics = ts
            .traffics
            .iter()
            .enumerate()
            .map(|(i, t)| (t.volume, support_of(&plan, i)))
            .collect();
        let pair_of = (0..pairs.len()).map(Some).collect();
        Ok(DeltaInstance {
            num_edges: graph.edge_count(),
            traffics,
            routing: Some(Routing {
                graph: graph.clone(),
                plan,
                pair_of,
            }),
            ..Default::default()
        })
    }

    /// Materializes the current instance (the exact state the chained
    /// solves are answering for).
    pub fn instance(&self) -> PpmInstance {
        PpmInstance::new(self.num_edges, self.traffics.clone())
    }

    /// Number of traffics currently in the instance.
    pub fn traffic_count(&self) -> usize {
        self.traffics.len()
    }

    /// Number of links in the instance.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// The pre-installed device set (sorted, deduplicated).
    pub fn installed(&self) -> &[usize] {
        &self.installed
    }

    /// The currently failed links (sorted).
    pub fn disabled(&self) -> &[usize] {
        &self.disabled
    }

    /// `true` for routed chains (built by [`DeltaInstance::from_traffic`]),
    /// where link toggles re-route the crossing traffics. Unrouted chains
    /// keep every support fixed, which is what lets the resilience scorer
    /// track coverage incrementally.
    pub fn is_routed(&self) -> bool {
        self.routing.is_some()
    }

    /// The current demand volume of flow `t`.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range flow index.
    pub fn demand(&self, t: usize) -> f64 {
        self.traffics[t].0
    }

    /// Adds a flow and returns its index.
    ///
    /// When the support matches an existing identical-support group of the
    /// cached exact model (or is uncoverable), the model is repaired in
    /// place — one coverage-row update — and the warm chain survives; a
    /// genuinely new support drops the cache.
    ///
    /// # Panics
    ///
    /// Panics on a negative/NaN volume or an out-of-range support edge.
    pub fn add_flow(&mut self, volume: f64, support: Vec<usize>) -> usize {
        assert!(
            volume.is_finite() && volume >= 0.0,
            "volume must be finite and >= 0"
        );
        let mut support = support;
        support.sort_unstable();
        support.dedup();
        if let Some(&max) = support.last() {
            assert!(
                max < self.num_edges,
                "support references edge {max} >= {}",
                self.num_edges
            );
        }
        self.budget_cache = None;
        if let Some(routing) = self.routing.as_mut() {
            // Explicit-support flows are not endpoint-routed: they keep
            // their support verbatim across link toggles.
            routing.pair_of.push(None);
        }
        self.traffics.push((volume, support));
        self.refresh_exact_volumes();
        self.traffics.len() - 1
    }

    /// Removes flow `t` (indices above `t` shift down, as in `Vec::remove`).
    /// A volume-only repair on the cached exact model: the warm chain
    /// survives (the emptied group's coverage weight drops, its row stays).
    pub fn remove_flow(&mut self, t: usize) {
        self.budget_cache = None;
        if let Some(routing) = self.routing.as_mut() {
            routing.pair_of.remove(t);
        }
        self.traffics.remove(t);
        self.refresh_exact_volumes();
    }

    /// Scales the demand of flow `t` by `factor`. A volume-only repair on
    /// the cached exact model: the warm chain survives.
    ///
    /// # Panics
    ///
    /// Panics when the scaled volume is negative or not finite.
    pub fn scale_demand(&mut self, t: usize, factor: f64) {
        let v = self.traffics[t].0 * factor;
        assert!(
            v.is_finite() && v >= 0.0,
            "scaled volume must be finite and >= 0, got {v}"
        );
        self.budget_cache = None;
        self.traffics[t].0 = v;
        self.refresh_exact_volumes();
    }

    /// Sets the demand of flow `t` to an absolute `volume`. The exact-reset
    /// sibling of [`DeltaInstance::scale_demand`]: scaling back by `1/f`
    /// does not round-trip in floating point, so chains that must restore a
    /// bit-exact base state (the resilience scorer between scenarios) set
    /// the recorded base volume instead. A volume-only repair on the cached
    /// exact model: the warm chain survives.
    ///
    /// # Panics
    ///
    /// Panics when the volume is negative or not finite.
    pub fn set_demand(&mut self, t: usize, volume: f64) {
        assert!(
            volume.is_finite() && volume >= 0.0,
            "volume must be finite and >= 0, got {volume}"
        );
        self.budget_cache = None;
        self.traffics[t].0 = volume;
        self.refresh_exact_volumes();
    }

    /// Replaces the pre-installed device set (edges fixed to 1 at zero
    /// cost — [`solve_incremental`]'s sunk-cost semantics). A bound/cost
    /// repair on the cached exact model: only the edges whose status
    /// changed are touched and the warm chain survives.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range edge.
    pub fn set_installed(&mut self, installed: &[usize]) {
        for &e in installed {
            assert!(e < self.num_edges, "installed edge {e} out of range");
        }
        let mut new: Vec<usize> = installed.to_vec();
        new.sort_unstable();
        new.dedup();
        let old = std::mem::replace(&mut self.installed, new);
        // The budget model bakes the installed set into its structure.
        self.budget_cache = None;
        if let Some(cache) = self.exact_cache.as_mut() {
            for &e in old.iter().chain(&self.installed) {
                if old.binary_search(&e).is_ok() != self.installed.binary_search(&e).is_ok() {
                    sync_exact_edge(cache, &self.installed, &self.disabled, e);
                }
            }
        }
    }

    /// Fails link `e`: no device may sit on it — even a pre-installed one
    /// (failure beats installation in both [`DeltaInstance::solve_exact`]
    /// and [`DeltaInstance::solve_budget`]) — and, in routed mode, every
    /// traffic whose path crossed it is re-routed around it (traffics
    /// disconnected by the failure keep their volume with an empty
    /// support, i.e. become uncoverable). Returns how many traffics were
    /// actually re-routed — the delta-aware savings are `traffic_count()`
    /// minus that.
    ///
    /// When nothing re-routes (unrouted chains, or no traffic crossed the
    /// link), this is a pure bound repair on the cached exact model —
    /// `x_e` fixed to 0 — and the next solve is an incremental dual-simplex
    /// re-optimization, not a cold rebuild.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range edge.
    pub fn fail_link(&mut self, e: usize) -> usize {
        assert!(e < self.num_edges, "link {e} out of range");
        if !self.disabled.contains(&e) {
            self.disabled.push(e);
            self.disabled.sort_unstable();
        }
        let rerouted = self.reroute();
        self.budget_cache = None;
        if rerouted > 0 {
            // Supports changed: the merged group structure is stale.
            self.exact_cache = None;
        } else if let Some(cache) = self.exact_cache.as_mut() {
            sync_exact_edge(cache, &self.installed, &self.disabled, e);
        }
        rerouted
    }

    /// Restores a previously failed link (an *improving* change: in
    /// routed mode every traffic is re-routed from scratch). Returns the
    /// number of re-routed traffics. Like [`DeltaInstance::fail_link`],
    /// a re-route-free restore keeps the warm chain alive.
    pub fn restore_link(&mut self, e: usize) -> usize {
        assert!(e < self.num_edges, "link {e} out of range");
        self.disabled.retain(|&d| d != e);
        let rerouted = self.reroute();
        self.budget_cache = None;
        if rerouted > 0 {
            self.exact_cache = None;
        } else if let Some(cache) = self.exact_cache.as_mut() {
            sync_exact_edge(cache, &self.installed, &self.disabled, e);
        }
        rerouted
    }

    /// Re-routes against the current failure set; no-op without routing.
    fn reroute(&mut self) -> usize {
        let Some(routing) = self.routing.as_mut() else {
            return 0;
        };
        let banned: Vec<EdgeId> = self.disabled.iter().map(|&e| EdgeId(e as u32)).collect();
        let (plan, recomputed) = routing
            .plan
            .reroute_avoiding(&routing.graph, &banned)
            .expect("pairs stay valid");
        routing.plan = plan;
        for (i, t) in self.traffics.iter_mut().enumerate() {
            if let Some(p) = routing.pair_of[i] {
                t.1 = support_of(&routing.plan, p);
            }
        }
        recomputed
    }

    /// After a volume-only delta, repairs the cached exact model's
    /// coverage row in place: the identical-support groups are unchanged,
    /// only their summed volumes moved, so one [`milp::Model::set_constr`]
    /// on the stored target row brings the model back in sync and the warm
    /// basis survives. Drops the cache instead when some traffic's support
    /// no longer maps onto the cached groups (the structural case).
    fn refresh_exact_volumes(&mut self) {
        let Some(mut cache) = self.exact_cache.take() else {
            return;
        };
        let index: HashMap<&[usize], usize> = cache
            .groups
            .iter()
            .enumerate()
            .map(|(g, (s, _))| (s.as_slice(), g))
            .collect();
        // Re-derive each group's volume exactly as `PpmInstance::merged`
        // would: skip zero-volume/uncoverable traffics, sum the rest in
        // original traffic order (merge_traffics stable-sorts, so within a
        // group the summation order — hence the float — is identical).
        let mut vols = vec![0.0f64; cache.groups.len()];
        for (v, s) in &self.traffics {
            if *v <= 0.0 || s.is_empty() {
                continue;
            }
            match index.get(s.as_slice()) {
                Some(&g) => vols[g] += v,
                None => return, // new support group: cache stays dropped
            }
        }
        let terms: Vec<(VarId, f64)> = cache
            .groups
            .iter()
            .zip(&vols)
            .map(|((_, d), &v)| (*d, v))
            .collect();
        cache.model.set_constr(cache.target_row, terms);
        for (g, &v) in vols.iter().enumerate() {
            cache.merged.traffics[g].0 = v;
        }
        self.exact_cache = Some(cache);
    }

    /// Exact minimum-device `PPM(k)` on the current state, warm-started
    /// from the previous solve of this chain. Identical results to
    /// [`solve_ppm_exact`] (no installed devices) / [`solve_incremental`]
    /// (with them); `None` when the target is unreachable.
    ///
    /// Deprecated shim: new code should build a
    /// [`SolveRequest`](crate::solve::SolveRequest) and call
    /// [`DeltaInstance::solve`] — this method now routes through it.
    ///
    /// # Panics
    ///
    /// Panics when `k` lies outside `[0, 1]`.
    pub fn solve_exact(&mut self, k: f64, opts: &ExactOptions) -> Option<PpmSolution> {
        let req = SolveRequest::ppm(k).with_exact_options(opts);
        let outcome = self.solve(&req).unwrap_or_else(|e| panic!("{e}"));
        // Legacy surface: a degraded anytime answer collapses to its
        // partial placement (the unified API keeps the record).
        let outcome = match outcome {
            SolveOutcome::Degraded { partial, .. } => *partial,
            other => other,
        };
        match outcome {
            SolveOutcome::Ppm(sol) => Some(sol),
            SolveOutcome::Unreachable => None,
            other => unreachable!("PPM request produced {other:?}"),
        }
    }

    /// The exact-solve kernel behind [`DeltaInstance::solve`] (`k` already
    /// validated by the request).
    pub(crate) fn solve_exact_core(
        &mut self,
        k: f64,
        opts: &ExactOptions,
    ) -> Anytime<Option<PpmSolution>> {
        let inst = self.instance();
        let target = k * inst.total_volume();
        if target > inst.max_coverage_fraction() * inst.total_volume() + 1e-9 {
            return Anytime::Done(None);
        }
        if self.exact_cache.is_none() {
            let merged = inst.merged();
            let (mut model, xs) = build_lp2_target(&merged, 0.0);
            for &e in &self.installed {
                model.fix_var(xs[e], 1.0);
                model.set_cost(xs[e], 0.0);
            }
            for &e in &self.disabled {
                model.fix_var(xs[e], 0.0);
            }
            let target_row = model.constr(model.constr_count() - 1);
            // δ variables sit right after the x block, one per merged
            // group in group order (build_lp2_target's layout).
            let groups = merged
                .traffics
                .iter()
                .enumerate()
                .map(|(g, (_, s))| (s.clone(), model.var(xs.len() + g)))
                .collect();
            self.exact_cache = Some(ModelCache {
                merged,
                model,
                xs,
                warm: None,
                target_row,
                groups,
            });
        }
        let plain = self.installed.is_empty() && self.disabled.is_empty();
        let cache = self.exact_cache.as_mut().expect("built above");
        let target_row = cache.target_row;
        cache.model.set_rhs(target_row, target);
        if plain && opts.warm_start {
            install_greedy_incumbent(&mut cache.model, &cache.xs, &inst, &cache.merged, k);
        }
        // Mirror the one-shot solvers' options exactly (solve_ppm_exact
        // forwards rel_gap, solve_incremental keeps the default) so chain
        // results are comparable point for point.
        let mip_opts = MipOptions {
            max_nodes: opts.max_nodes,
            time_limit: opts.time_limit,
            rel_gap: if plain {
                opts.rel_gap
            } else {
                MipOptions::default().rel_gap
            },
            integral_objective: Some(true),
            warm_basis: true,
            work_budget: opts.work_budget,
            ..Default::default()
        };
        let (outcome, warm) = match cache
            .model
            .solve_mip_anytime(&mip_opts, cache.warm.as_ref())
        {
            Ok(out) => out,
            Err(milp::SolverError::Infeasible) => return Anytime::Done(None),
            Err(e) => panic!("MIP solver failed unexpectedly: {e}"),
        };
        if warm.is_some() {
            cache.warm = warm;
        }
        let num_edges = self.num_edges;
        let extract = |sol: &milp::Solution| -> Vec<usize> {
            (0..num_edges)
                .filter(|&e| sol.is_one(cache.xs[e], 1e-4))
                .collect()
        };
        match outcome {
            MipOutcome::Complete(sol) => Anytime::Done(Some(PpmSolution::from_edges(
                &inst,
                extract(&sol),
                sol.status == SolveStatus::Optimal,
            ))),
            MipOutcome::Interrupted {
                incumbent,
                bound,
                work_spent,
            } => Anytime::Cut {
                incumbent: incumbent
                    .map(|sol| Some(PpmSolution::from_edges(&inst, extract(&sol), false))),
                bound,
                work_spent,
            },
        }
    }

    /// Maximum-coverage placement of at most `budget` new devices on top
    /// of the installed set, warm-started along the chain. Identical
    /// results to [`solve_budget`].
    ///
    /// Deprecated shim: new code should build a
    /// [`SolveRequest::budget`](crate::solve::SolveRequest::budget) request
    /// and call [`DeltaInstance::solve`] — this method now routes through
    /// it.
    pub fn solve_budget(&mut self, budget: usize, opts: &ExactOptions) -> BudgetSolution {
        let req = SolveRequest::budget(budget).with_exact_options(opts);
        let outcome = self.solve(&req).unwrap_or_else(|e| panic!("{e}"));
        let outcome = match outcome {
            SolveOutcome::Degraded { partial, .. } => *partial,
            other => other,
        };
        match outcome {
            SolveOutcome::Budget(sol) => sol,
            other => unreachable!("budget request produced {other:?}"),
        }
    }

    /// The budget-solve kernel behind [`DeltaInstance::solve`].
    pub(crate) fn solve_budget_core(
        &mut self,
        budget: usize,
        opts: &ExactOptions,
    ) -> Anytime<BudgetSolution> {
        let inst = self.instance();
        if self.budget_cache.is_none() {
            let merged = inst.merged();
            let (mut model, xs) = build_budget_model(&merged, &self.installed);
            // Failure beats installation: a device on a failed link is
            // dead, so x_e drops to 0 even when e is in the installed set
            // (matching solve_exact's precedence).
            for &e in &self.disabled {
                model.fix_var(xs[e], 0.0);
            }
            let target_row = model.constr(model.constr_count() - 1);
            self.budget_cache = Some(ModelCache {
                merged,
                model,
                xs,
                warm: None,
                target_row,
                groups: Vec::new(),
            });
        }
        let cache = self.budget_cache.as_mut().expect("built above");
        let budget_row = cache.target_row;
        cache.model.set_rhs(budget_row, budget as f64);
        let mip_opts = MipOptions {
            max_nodes: opts.max_nodes,
            time_limit: opts.time_limit,
            warm_basis: true,
            work_budget: opts.work_budget,
            ..Default::default()
        };
        let (outcome, warm) = cache
            .model
            .solve_mip_anytime(&mip_opts, cache.warm.as_ref())
            .expect("budget problem is always feasible");
        if warm.is_some() {
            cache.warm = warm;
        }
        let num_edges = self.num_edges;
        let to_budget_solution = |sol: &milp::Solution, proven: bool| -> BudgetSolution {
            let edges: Vec<usize> = (0..num_edges)
                .filter(|&e| sol.is_one(cache.xs[e], 1e-4))
                .collect();
            let coverage = inst.coverage(&edges);
            BudgetSolution {
                edges,
                coverage,
                total_volume: inst.total_volume(),
                proven_optimal: proven,
            }
        };
        match outcome {
            MipOutcome::Complete(sol) => {
                let proven = sol.status == SolveStatus::Optimal;
                Anytime::Done(to_budget_solution(&sol, proven))
            }
            MipOutcome::Interrupted {
                incumbent,
                bound,
                work_spent,
            } => Anytime::Cut {
                incumbent: incumbent.map(|sol| to_budget_solution(&sol, false)),
                bound,
                work_spent,
            },
        }
    }

    /// Coverage gain (absolute volume) of buying `extra` devices on top
    /// of the installed base — [`crate::passive::expected_gain`], chained.
    pub fn expected_gain(&mut self, extra: usize, opts: &ExactOptions) -> f64 {
        let before = self.instance().coverage(&self.installed);
        let after = self.solve_budget(extra, opts).coverage;
        (after - before).max(0.0)
    }

    // --- Fallible mutation surface -------------------------------------
    //
    // Typed-error (`PlacementError`) forms of the panicking mutations
    // above, for callers that forward untrusted input (the `popmond`
    // service maps these straight onto its wire errors). Each validates
    // first and mutates nothing on rejection.

    /// Checks that link `e` exists.
    fn check_link(&self, e: usize) -> Result<(), PlacementError> {
        if e >= self.num_edges {
            return Err(PlacementError::new(
                "link",
                format!(
                    "link {e} out of range (instance has {} links)",
                    self.num_edges
                ),
            ));
        }
        Ok(())
    }

    /// Checks that flow `t` exists.
    fn check_traffic(&self, t: usize) -> Result<(), PlacementError> {
        if t >= self.traffics.len() {
            return Err(PlacementError::new(
                "traffic",
                format!(
                    "traffic {t} out of range (instance has {} traffics)",
                    self.traffics.len()
                ),
            ));
        }
        Ok(())
    }

    /// Fallible [`DeltaInstance::fail_link`].
    pub fn try_fail_link(&mut self, e: usize) -> Result<usize, PlacementError> {
        self.check_link(e)?;
        Ok(self.fail_link(e))
    }

    /// Fallible [`DeltaInstance::restore_link`].
    pub fn try_restore_link(&mut self, e: usize) -> Result<usize, PlacementError> {
        self.check_link(e)?;
        Ok(self.restore_link(e))
    }

    /// Fallible [`DeltaInstance::scale_demand`].
    pub fn try_scale_demand(&mut self, t: usize, factor: f64) -> Result<(), PlacementError> {
        self.check_traffic(t)?;
        let v = self.traffics[t].0 * factor;
        if !v.is_finite() || v < 0.0 {
            return Err(PlacementError::new(
                "factor",
                format!("scaled volume must be finite and >= 0, got {v}"),
            ));
        }
        self.scale_demand(t, factor);
        Ok(())
    }

    /// Fallible [`DeltaInstance::set_demand`].
    pub fn try_set_demand(&mut self, t: usize, volume: f64) -> Result<(), PlacementError> {
        self.check_traffic(t)?;
        if !volume.is_finite() || volume < 0.0 {
            return Err(PlacementError::new(
                "volume",
                format!("volume must be finite and >= 0, got {volume}"),
            ));
        }
        self.set_demand(t, volume);
        Ok(())
    }

    /// Fallible [`DeltaInstance::add_flow`].
    pub fn try_add_flow(
        &mut self,
        volume: f64,
        support: Vec<usize>,
    ) -> Result<usize, PlacementError> {
        if !volume.is_finite() || volume < 0.0 {
            return Err(PlacementError::new(
                "volume",
                format!("volume must be finite and >= 0, got {volume}"),
            ));
        }
        if let Some(&e) = support.iter().find(|&&e| e >= self.num_edges) {
            return Err(PlacementError::new(
                "support",
                format!(
                    "link {e} out of range (instance has {} links)",
                    self.num_edges
                ),
            ));
        }
        Ok(self.add_flow(volume, support))
    }

    /// Fallible [`DeltaInstance::remove_flow`].
    pub fn try_remove_flow(&mut self, t: usize) -> Result<(), PlacementError> {
        self.check_traffic(t)?;
        self.remove_flow(t);
        Ok(())
    }

    /// Fallible [`DeltaInstance::set_installed`].
    pub fn try_set_installed(&mut self, installed: &[usize]) -> Result<(), PlacementError> {
        if let Some(&e) = installed.iter().find(|&&e| e >= self.num_edges) {
            return Err(PlacementError::new(
                "installed",
                format!(
                    "link {e} out of range (instance has {} links)",
                    self.num_edges
                ),
            ));
        }
        self.set_installed(installed);
        Ok(())
    }
}

/// Re-syncs `x_e`'s bounds and cost in a cached exact model after edge `e`
/// changed installed/disabled status — reproducing exactly the state a
/// cold rebuild would set up: installed devices are fixed to 1 at zero
/// cost, failure beats installation (fixed to 0, cost as the rebuild
/// leaves it), free edges are binary at unit cost.
fn sync_exact_edge(cache: &mut ModelCache, installed: &[usize], disabled: &[usize], e: usize) {
    let x = cache.xs[e];
    let installed = installed.binary_search(&e).is_ok();
    if disabled.binary_search(&e).is_ok() {
        cache.model.set_cost(x, if installed { 0.0 } else { 1.0 });
        cache.model.fix_var(x, 0.0);
    } else if installed {
        cache.model.set_cost(x, 0.0);
        cache.model.fix_var(x, 1.0);
    } else {
        cache.model.set_cost(x, 1.0);
        cache.model.set_bounds(x, 0.0, 1.0);
    }
}

/// The sorted support of pair `i` under `plan` (empty when disconnected).
fn support_of(plan: &RoutePlan, i: usize) -> Vec<usize> {
    match plan.routes(i).first() {
        Some(p) => {
            let mut s: Vec<usize> = p.edges().iter().map(|e| e.index()).collect();
            s.sort_unstable();
            s.dedup();
            s
        }
        None => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::fixture_figure3;
    use crate::passive::{solve_budget, solve_incremental, solve_ppm_exact};

    #[test]
    fn chain_matches_one_shot_on_figure3() {
        let inst = fixture_figure3();
        let mut delta = DeltaInstance::from_instance(&inst);
        let opts = ExactOptions::default();
        for k in [0.5, 0.75, 0.9, 1.0] {
            let chained = delta.solve_exact(k, &opts).unwrap();
            let fresh = solve_ppm_exact(&inst, k, &opts).unwrap();
            assert_eq!(chained.device_count(), fresh.device_count(), "k = {k}");
            assert!(inst.is_feasible(&chained.edges, k));
            assert!(chained.proven_optimal);
        }
    }

    #[test]
    fn chain_matches_incremental_with_installed_base() {
        let inst = fixture_figure3();
        let mut delta = DeltaInstance::from_instance(&inst);
        delta.set_installed(&[0]);
        let opts = ExactOptions::default();
        for k in [0.75, 1.0] {
            let chained = delta.solve_exact(k, &opts).unwrap();
            let fresh = solve_incremental(&inst, k, &[0], &opts).unwrap();
            assert_eq!(chained.device_count(), fresh.device_count(), "k = {k}");
            assert!(chained.edges.contains(&0), "installed device must stay");
        }
    }

    #[test]
    fn budget_chain_matches_one_shot() {
        let inst = fixture_figure3();
        let mut delta = DeltaInstance::from_instance(&inst);
        let opts = ExactOptions::default();
        for b in 0..=3 {
            let chained = delta.solve_budget(b, &opts);
            let fresh = solve_budget(&inst, b, &[], &opts);
            assert!(
                (chained.coverage - fresh.coverage).abs() < 1e-9,
                "budget = {b}"
            );
        }
    }

    #[test]
    fn structural_deltas_invalidate_and_stay_exact() {
        let inst = fixture_figure3();
        let mut delta = DeltaInstance::from_instance(&inst);
        let opts = ExactOptions::default();
        let _ = delta.solve_exact(1.0, &opts).unwrap();

        // Scale one demand, add a flow, remove a flow — after each delta
        // the chained answer must equal the one-shot answer on the
        // materialized instance.
        delta.scale_demand(0, 3.0);
        let t = delta.add_flow(2.5, vec![3, 4]);
        let a = delta.solve_exact(0.9, &opts).unwrap();
        let fresh = solve_ppm_exact(&delta.instance(), 0.9, &opts).unwrap();
        assert_eq!(a.device_count(), fresh.device_count());

        delta.remove_flow(t);
        let b = delta.solve_exact(0.9, &opts).unwrap();
        let fresh = solve_ppm_exact(&delta.instance(), 0.9, &opts).unwrap();
        assert_eq!(b.device_count(), fresh.device_count());
    }

    #[test]
    fn disabled_link_is_never_selected() {
        let inst = fixture_figure3();
        let mut delta = DeltaInstance::from_instance(&inst);
        let opts = ExactOptions::default();
        let free = delta.solve_exact(1.0, &opts).unwrap();
        assert_eq!(free.edges, vec![1, 2]);
        // Unrouted mode: failing link 1 only forbids the device there.
        delta.fail_link(1);
        let constrained = delta.solve_exact(1.0, &opts).unwrap();
        assert!(!constrained.edges.contains(&1));
        assert!(delta.instance().is_feasible(&constrained.edges, 1.0));
        assert!(constrained.device_count() >= free.device_count());
    }

    #[test]
    fn failing_an_installed_link_kills_its_device_in_both_solvers() {
        let inst = fixture_figure3();
        let opts = ExactOptions::default();
        let mut delta = DeltaInstance::from_instance(&inst);
        delta.set_installed(&[1]);
        delta.fail_link(1);
        // Exact: the dead device is gone and the cover must rebuild
        // around it.
        let exact = delta.solve_exact(1.0, &opts).unwrap();
        assert!(
            !exact.edges.contains(&1),
            "failed link must not host a device"
        );
        assert!(inst.is_feasible(&exact.edges, 1.0));
        // Budget: same precedence — with budget 0 nothing can be placed
        // and the dead installed device contributes no coverage.
        let b = delta.solve_budget(0, &opts);
        assert!(
            b.edges.is_empty(),
            "dead installed device must not count, got {:?}",
            b.edges
        );
        assert_eq!(b.coverage, 0.0);
    }

    #[test]
    fn volume_deltas_keep_the_warm_chain_alive() {
        let inst = fixture_figure3();
        let mut delta = DeltaInstance::from_instance(&inst);
        let opts = ExactOptions::default();
        let _ = delta.solve_exact(1.0, &opts).unwrap();
        assert!(delta.exact_cache.is_some());

        // Scale, re-add an existing support group, remove — all volume-only
        // repairs: the cached model must survive every one of them.
        delta.scale_demand(0, 2.5);
        assert!(delta.exact_cache.is_some(), "scale must repair in place");
        let support = delta.traffics[1].1.clone();
        let t = delta.add_flow(1.5, support);
        assert!(
            delta.exact_cache.is_some(),
            "existing-group add_flow must repair in place"
        );
        delta.remove_flow(t);
        assert!(delta.exact_cache.is_some(), "remove must repair in place");

        // And the repaired model answers exactly like a cold solve.
        let chained = delta.solve_exact(0.9, &opts).unwrap();
        let fresh = solve_ppm_exact(&delta.instance(), 0.9, &opts).unwrap();
        assert_eq!(chained.device_count(), fresh.device_count());
        assert!(delta.instance().is_feasible(&chained.edges, 0.9));

        // A genuinely new support group is structural: cache dropped.
        delta.add_flow(1.0, vec![0, 3]);
        assert!(
            delta.exact_cache.is_none(),
            "new support group must drop the cache"
        );
        let chained = delta.solve_exact(0.9, &opts).unwrap();
        let fresh = solve_ppm_exact(&delta.instance(), 0.9, &opts).unwrap();
        assert_eq!(chained.device_count(), fresh.device_count());
    }

    #[test]
    fn unrouted_link_toggles_keep_the_warm_chain_alive() {
        let inst = fixture_figure3();
        let mut delta = DeltaInstance::from_instance(&inst);
        let opts = ExactOptions::default();
        let _ = delta.solve_exact(1.0, &opts).unwrap();

        // Unrouted fail/restore never re-routes: pure bound repairs.
        delta.fail_link(1);
        assert!(delta.exact_cache.is_some(), "fail must repair in place");
        let a = delta.solve_exact(1.0, &opts).unwrap();
        let fresh = solve_ppm_exact(&delta.instance(), 1.0, &opts).unwrap();
        // solve_ppm_exact has no disabled set; compare against the chained
        // invariant instead: feasible, link excluded, optimal.
        assert!(!a.edges.contains(&1));
        assert!(delta.instance().is_feasible(&a.edges, 1.0));
        assert!(a.device_count() >= fresh.device_count());

        delta.restore_link(1);
        assert!(delta.exact_cache.is_some(), "restore must repair in place");
        let b = delta.solve_exact(1.0, &opts).unwrap();
        let cold = solve_ppm_exact(&delta.instance(), 1.0, &opts).unwrap();
        assert_eq!(b.device_count(), cold.device_count());

        // set_installed is a cost/bound repair on the changed edges only.
        delta.set_installed(&[0]);
        assert!(
            delta.exact_cache.is_some(),
            "set_installed must repair in place"
        );
        let c = delta.solve_exact(1.0, &opts).unwrap();
        let cold = solve_incremental(&delta.instance(), 1.0, &[0], &opts).unwrap();
        assert_eq!(c.device_count(), cold.device_count());
        assert!(c.edges.contains(&0));
        delta.set_installed(&[]);
        let d = delta.solve_exact(1.0, &opts).unwrap();
        let cold = solve_ppm_exact(&delta.instance(), 1.0, &opts).unwrap();
        assert_eq!(d.device_count(), cold.device_count());
    }

    #[test]
    fn long_mixed_chain_tracks_cold_solves_exactly() {
        use popgen::{PopSpec, TrafficSpec};

        let pop = PopSpec::small().build();
        let inst = {
            let ts = TrafficSpec::default().generate(&pop, 7);
            PpmInstance::from_traffic(&pop.graph, &ts)
        };
        let mut delta = DeltaInstance::from_instance(&inst);
        let opts = ExactOptions::default();
        let k = 0.8;
        let _ = delta.solve_exact(k, &opts);

        // A what-if stream: every answer must equal the cold solve on the
        // materialized instance (the service's determinism contract).
        let m = inst.num_edges;
        type Mutation = Box<dyn Fn(&mut DeltaInstance)>;
        let script: Vec<Mutation> = vec![
            Box::new(|d| {
                d.fail_link(0);
            }),
            Box::new(|d| d.scale_demand(2, 1.75)),
            Box::new(move |d| {
                d.fail_link(m - 1);
            }),
            Box::new(|d| {
                d.restore_link(0);
            }),
            Box::new(|d| d.set_installed(&[1, 3])),
            Box::new(|d| d.scale_demand(0, 0.25)),
            Box::new(move |d| {
                d.restore_link(m - 1);
            }),
            Box::new(|d| d.set_installed(&[])),
        ];
        for (step, mutate) in script.iter().enumerate() {
            mutate(&mut delta);
            let chained = delta.solve_exact(k, &opts);
            // The cold reference replays the same mutation prefix on a
            // fresh chain, so its first solve builds the model from
            // scratch — the service-vs-batch contract in miniature.
            let mut replay = DeltaInstance::from_instance(&inst);
            for m in &script[..=step] {
                m(&mut replay);
            }
            let cold = replay.solve_exact(k, &opts);
            // Warm and cold may land on different optimal vertices, so the
            // contract is the optimum value plus feasibility — byte-equal
            // placements are only promised for identical call sequences
            // (the service-vs-batch harness checks that stronger form).
            match (chained, cold) {
                (Some(a), Some(b)) => {
                    assert_eq!(a.device_count(), b.device_count(), "step {step}");
                    let snapshot = delta.instance();
                    assert!(snapshot.is_feasible(&a.edges, k), "step {step}");
                    assert!(snapshot.is_feasible(&b.edges, k), "step {step}");
                }
                (None, None) => {}
                (a, b) => panic!("step {step}: chained {a:?} vs cold {b:?}"),
            }
            // Solver-independent anchor where the one-shot API applies.
            if delta.disabled.is_empty() {
                let snapshot = delta.instance();
                let installed = delta.installed.clone();
                let one_shot = if installed.is_empty() {
                    solve_ppm_exact(&snapshot, k, &opts)
                } else {
                    solve_incremental(&snapshot, k, &installed, &opts)
                };
                if let Some(b) = one_shot {
                    let a = delta.solve_exact(k, &opts).unwrap();
                    assert_eq!(a.device_count(), b.device_count(), "step {step}");
                }
            }
        }
        assert!(
            delta.exact_cache.is_some(),
            "the whole unrouted chain must ride one cached model"
        );
    }

    #[test]
    fn routed_mode_reroutes_only_crossing_traffics() {
        use popgen::{PopSpec, TrafficSpec};

        let pop = PopSpec::paper_10().build();
        let ts = TrafficSpec::default().generate(&pop, 0);
        let mut delta = DeltaInstance::from_traffic(&pop.graph, &ts);

        // Unfailed routed supports must match the generator's own routing.
        let fresh = PpmInstance::from_traffic(&pop.graph, &ts);
        let routed = delta.instance();
        assert_eq!(routed.num_edges, fresh.num_edges);
        for (a, b) in routed.traffics.iter().zip(&fresh.traffics) {
            assert_eq!(a.0.to_bits(), b.0.to_bits());
            assert_eq!(a.1, b.1, "deterministic tie-breaking must agree");
        }

        // Fail the most loaded link: only its crossing traffics re-route.
        let loads = fresh.edge_loads();
        let heavy = (0..loads.len())
            .max_by(|&a, &b| loads[a].total_cmp(&loads[b]))
            .unwrap();
        let crossing = fresh
            .traffics
            .iter()
            .filter(|(_, s)| s.contains(&heavy))
            .count();
        let recomputed = delta.fail_link(heavy);
        assert_eq!(
            recomputed, crossing,
            "exactly the crossing traffics re-route"
        );
        let after = delta.instance();
        assert!(after.traffics.iter().all(|(_, s)| !s.contains(&heavy)));

        // And the graph-level ground truth: every re-routed support is the
        // shortest path avoiding the failed link.
        let banned = [netgraph::EdgeId(heavy as u32)];
        for (i, t) in ts.traffics.iter().enumerate() {
            let want: Vec<usize> = match netgraph::dijkstra::shortest_path_avoiding(
                &pop.graph,
                t.src,
                t.dst,
                &[],
                &banned,
            ) {
                Ok(p) => {
                    let mut s: Vec<usize> = p.edges().iter().map(|e| e.index()).collect();
                    s.sort_unstable();
                    s.dedup();
                    s
                }
                Err(_) => Vec::new(),
            };
            assert_eq!(after.traffics[i].1, want, "traffic {i}");
        }
    }

    #[test]
    fn routed_flow_churn_keeps_pair_alignment() {
        use popgen::{PopSpec, TrafficSpec};

        let pop = PopSpec::small().build();
        let ts = TrafficSpec::default().generate(&pop, 3);
        let mut delta = DeltaInstance::from_traffic(&pop.graph, &ts);
        assert!(delta.traffic_count() >= 3, "fixture too small for churn");

        // Remove a middle flow, then add one with an explicit support;
        // the surviving endpoint-routed traffics must keep re-routing
        // against their own pairs (this used to index the route plan
        // with post-churn traffic indices).
        delta.remove_flow(1);
        let added = delta.add_flow(4.0, vec![0, 1]);
        let mut endpoints: Vec<_> = ts.traffics.iter().map(|t| (t.src, t.dst)).collect();
        endpoints.remove(1);

        let heavy = delta.instance().traffics[0].1[0];
        delta.fail_link(heavy);
        let after = delta.instance();
        assert_eq!(
            after.traffics[added].1,
            vec![0, 1],
            "explicit-support flows never re-route"
        );
        let banned = [netgraph::EdgeId(heavy as u32)];
        let ground_truth = |src, dst, banned: &[netgraph::EdgeId]| -> Vec<usize> {
            match netgraph::dijkstra::shortest_path_avoiding(&pop.graph, src, dst, &[], banned) {
                Ok(p) => {
                    let mut s: Vec<usize> = p.edges().iter().map(|e| e.index()).collect();
                    s.sort_unstable();
                    s.dedup();
                    s
                }
                Err(_) => Vec::new(),
            }
        };
        for (i, &(src, dst)) in endpoints.iter().enumerate() {
            assert_eq!(
                after.traffics[i].1,
                ground_truth(src, dst, &banned),
                "routed traffic {i} after churn + failure"
            );
        }

        // Restoring is an improving change (full recompute): alignment
        // must survive that path too.
        delta.restore_link(heavy);
        let restored = delta.instance();
        for (i, &(src, dst)) in endpoints.iter().enumerate() {
            assert_eq!(
                restored.traffics[i].1,
                ground_truth(src, dst, &[]),
                "routed traffic {i} after restore"
            );
        }
        assert_eq!(restored.traffics[added].1, vec![0, 1]);
    }
}
