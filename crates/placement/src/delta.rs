//! Delta-aware instances: sweep grids as chains of perturbations.
//!
//! Every sweep of the experiment suite re-solves near-identical `PPM`
//! programs: the coverage target `k` walks a grid over one traffic
//! matrix, a budget grows device by device, a link fails and everything
//! else stays put. [`DeltaInstance`] represents that directly — one
//! mutable instance plus a chain of deltas — instead of a fresh
//! [`PpmInstance`] per grid point, and threads two kinds of reuse through
//! the solves:
//!
//! * **warm-started exact solves** — the LP 2 / budget MIPs are built
//!   once per instance structure; successive grid points only move a
//!   right-hand side ([`milp::Model::set_rhs`]) and re-optimize from the
//!   previous point's root basis with the dual simplex
//!   ([`milp::Model::solve_mip_warm`]), with branch-and-bound nodes
//!   reusing their parent's basis;
//! * **delta-aware re-routing** — in routed mode, failing a link re-runs
//!   Yen/Dijkstra only for the traffics whose path actually crossed it
//!   ([`netgraph::delta::RoutePlan`]).
//!
//! Results are *identical* to the one-shot solvers — the chains reuse
//! bases, never answers: a proven-optimal device count is the unique
//! optimum either way (pinned by `tests/delta_chain.rs` against
//! [`solve_ppm_exact`]/[`solve_incremental`]/[`solve_budget`] on the
//! seed-0 sweeps).

use milp::{MipOptions, MipWarmStart, Model, SolveStatus, VarId};
use netgraph::delta::RoutePlan;
use netgraph::{EdgeId, Graph, NodeId};
use popgen::TrafficSet;

use crate::instance::PpmInstance;
use crate::passive::{
    build_budget_model, build_lp2_target, install_greedy_incumbent, BudgetSolution, ExactOptions,
    PpmSolution,
};

/// Routed backing for link toggles: the graph and the delta-aware route
/// plan under the current failures (the failure set itself lives in
/// `DeltaInstance::disabled`; the plan records it as its ban list).
#[derive(Debug, Clone)]
struct Routing {
    graph: Graph,
    plan: RoutePlan,
}

/// A cached exact model: rebuilt when the instance structure changes,
/// re-targeted and warm-started along a grid otherwise.
#[derive(Debug)]
struct ModelCache {
    merged: PpmInstance,
    model: Model,
    xs: Vec<VarId>,
    warm: Option<MipWarmStart>,
}

/// A `PPM` instance under a chain of deltas (see the module docs).
///
/// Structural mutations (flows added/removed, demands scaled, links
/// toggled) invalidate the cached models; coverage-target and budget
/// moves ride the warm-start chain.
#[derive(Debug, Default)]
pub struct DeltaInstance {
    num_edges: usize,
    /// `(volume, sorted support)` per traffic — the *original* (unmerged)
    /// instance the solvers' coverage semantics are defined on.
    traffics: Vec<(f64, Vec<usize>)>,
    /// Pre-installed devices (`x_e` fixed to 1 at zero cost — the paper's
    /// incremental-deployment setting).
    installed: Vec<usize>,
    /// Links that cannot host a device (`x_e` fixed to 0).
    disabled: Vec<usize>,
    routing: Option<Routing>,
    exact_cache: Option<ModelCache>,
    budget_cache: Option<ModelCache>,
}

impl DeltaInstance {
    /// Starts a chain from an existing instance (no routed backing: link
    /// failures only disable device placement, they cannot re-route).
    pub fn from_instance(inst: &PpmInstance) -> Self {
        DeltaInstance {
            num_edges: inst.num_edges,
            traffics: inst.traffics.clone(),
            ..Default::default()
        }
    }

    /// Starts a *routed* chain: volumes and endpoints come from `ts`, and
    /// every traffic is (re-)routed on `graph` by this instance — along
    /// the crate's deterministic shortest paths, delta-aware under link
    /// failures.
    ///
    /// # Panics
    ///
    /// Panics when `ts` references nodes outside `graph`.
    pub fn from_traffic(graph: &Graph, ts: &TrafficSet) -> Self {
        let pairs: Vec<(NodeId, NodeId)> = ts.traffics.iter().map(|t| (t.src, t.dst)).collect();
        let plan = RoutePlan::compute(graph, &pairs, 1, &[]).expect("traffic endpoints in graph");
        let traffics = ts
            .traffics
            .iter()
            .enumerate()
            .map(|(i, t)| (t.volume, support_of(&plan, i)))
            .collect();
        DeltaInstance {
            num_edges: graph.edge_count(),
            traffics,
            routing: Some(Routing {
                graph: graph.clone(),
                plan,
            }),
            ..Default::default()
        }
    }

    /// Materializes the current instance (the exact state the chained
    /// solves are answering for).
    pub fn instance(&self) -> PpmInstance {
        PpmInstance::new(self.num_edges, self.traffics.clone())
    }

    /// Number of traffics currently in the instance.
    pub fn traffic_count(&self) -> usize {
        self.traffics.len()
    }

    /// Adds a flow and returns its index.
    ///
    /// # Panics
    ///
    /// Panics on a negative/NaN volume or an out-of-range support edge.
    pub fn add_flow(&mut self, volume: f64, support: Vec<usize>) -> usize {
        assert!(
            volume.is_finite() && volume >= 0.0,
            "volume must be finite and >= 0"
        );
        let mut support = support;
        support.sort_unstable();
        support.dedup();
        if let Some(&max) = support.last() {
            assert!(
                max < self.num_edges,
                "support references edge {max} >= {}",
                self.num_edges
            );
        }
        self.invalidate();
        self.traffics.push((volume, support));
        self.traffics.len() - 1
    }

    /// Removes flow `t` (indices above `t` shift down, as in `Vec::remove`).
    pub fn remove_flow(&mut self, t: usize) {
        self.invalidate();
        self.traffics.remove(t);
    }

    /// Scales the demand of flow `t` by `factor`.
    ///
    /// # Panics
    ///
    /// Panics when the scaled volume is negative or not finite.
    pub fn scale_demand(&mut self, t: usize, factor: f64) {
        let v = self.traffics[t].0 * factor;
        assert!(
            v.is_finite() && v >= 0.0,
            "scaled volume must be finite and >= 0, got {v}"
        );
        self.invalidate();
        self.traffics[t].0 = v;
    }

    /// Replaces the pre-installed device set (edges fixed to 1 at zero
    /// cost — [`solve_incremental`]'s sunk-cost semantics).
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range edge.
    pub fn set_installed(&mut self, installed: &[usize]) {
        for &e in installed {
            assert!(e < self.num_edges, "installed edge {e} out of range");
        }
        self.invalidate();
        self.installed = installed.to_vec();
        self.installed.sort_unstable();
        self.installed.dedup();
    }

    /// Fails link `e`: no device may sit on it — even a pre-installed one
    /// (failure beats installation in both [`DeltaInstance::solve_exact`]
    /// and [`DeltaInstance::solve_budget`]) — and, in routed mode, every
    /// traffic whose path crossed it is re-routed around it (traffics
    /// disconnected by the failure keep their volume with an empty
    /// support, i.e. become uncoverable). Returns how many traffics were
    /// actually re-routed — the delta-aware savings are `traffic_count()`
    /// minus that.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range edge.
    pub fn fail_link(&mut self, e: usize) -> usize {
        assert!(e < self.num_edges, "link {e} out of range");
        self.invalidate();
        if !self.disabled.contains(&e) {
            self.disabled.push(e);
            self.disabled.sort_unstable();
        }
        self.reroute()
    }

    /// Restores a previously failed link (an *improving* change: in
    /// routed mode every traffic is re-routed from scratch). Returns the
    /// number of re-routed traffics.
    pub fn restore_link(&mut self, e: usize) -> usize {
        self.invalidate();
        self.disabled.retain(|&d| d != e);
        self.reroute()
    }

    /// Re-routes against the current failure set; no-op without routing.
    fn reroute(&mut self) -> usize {
        let Some(routing) = self.routing.as_mut() else {
            return 0;
        };
        let banned: Vec<EdgeId> = self.disabled.iter().map(|&e| EdgeId(e as u32)).collect();
        let (plan, recomputed) = routing
            .plan
            .reroute_avoiding(&routing.graph, &banned)
            .expect("pairs stay valid");
        routing.plan = plan;
        for (i, t) in self.traffics.iter_mut().enumerate() {
            t.1 = support_of(&routing.plan, i);
        }
        recomputed
    }

    fn invalidate(&mut self) {
        self.exact_cache = None;
        self.budget_cache = None;
    }

    /// Exact minimum-device `PPM(k)` on the current state, warm-started
    /// from the previous solve of this chain. Identical results to
    /// [`solve_ppm_exact`] (no installed devices) / [`solve_incremental`]
    /// (with them); `None` when the target is unreachable.
    pub fn solve_exact(&mut self, k: f64, opts: &ExactOptions) -> Option<PpmSolution> {
        assert!(
            k.is_finite() && (0.0..=1.0 + 1e-12).contains(&k),
            "monitoring fraction k must lie in [0, 1], got {k}"
        );
        let inst = self.instance();
        let target = k * inst.total_volume();
        if target > inst.max_coverage_fraction() * inst.total_volume() + 1e-9 {
            return None;
        }
        if self.exact_cache.is_none() {
            let merged = inst.merged();
            let (mut model, xs) = build_lp2_target(&merged, 0.0);
            for &e in &self.installed {
                model.fix_var(xs[e], 1.0);
                model.set_cost(xs[e], 0.0);
            }
            for &e in &self.disabled {
                model.fix_var(xs[e], 0.0);
            }
            self.exact_cache = Some(ModelCache {
                merged,
                model,
                xs,
                warm: None,
            });
        }
        let plain = self.installed.is_empty() && self.disabled.is_empty();
        let cache = self.exact_cache.as_mut().expect("built above");
        let target_row = cache.model.constr(cache.model.constr_count() - 1);
        cache.model.set_rhs(target_row, target);
        if plain && opts.warm_start {
            install_greedy_incumbent(&mut cache.model, &cache.xs, &inst, &cache.merged, k);
        }
        // Mirror the one-shot solvers' options exactly (solve_ppm_exact
        // forwards rel_gap, solve_incremental keeps the default) so chain
        // results are comparable point for point.
        let mip_opts = MipOptions {
            max_nodes: opts.max_nodes,
            time_limit: opts.time_limit,
            rel_gap: if plain {
                opts.rel_gap
            } else {
                MipOptions::default().rel_gap
            },
            integral_objective: Some(true),
            warm_basis: true,
            ..Default::default()
        };
        let (sol, warm) = match cache.model.solve_mip_warm(&mip_opts, cache.warm.as_ref()) {
            Ok(out) => out,
            Err(milp::SolverError::Infeasible) => return None,
            Err(e) => panic!("MIP solver failed unexpectedly: {e}"),
        };
        if warm.is_some() {
            cache.warm = warm;
        }
        let edges: Vec<usize> = (0..self.num_edges)
            .filter(|&e| sol.is_one(cache.xs[e], 1e-4))
            .collect();
        Some(PpmSolution::from_edges(
            &inst,
            edges,
            sol.status == SolveStatus::Optimal,
        ))
    }

    /// Maximum-coverage placement of at most `budget` new devices on top
    /// of the installed set, warm-started along the chain. Identical
    /// results to [`solve_budget`].
    pub fn solve_budget(&mut self, budget: usize, opts: &ExactOptions) -> BudgetSolution {
        let inst = self.instance();
        if self.budget_cache.is_none() {
            let merged = inst.merged();
            let (mut model, xs) = build_budget_model(&merged, &self.installed);
            // Failure beats installation: a device on a failed link is
            // dead, so x_e drops to 0 even when e is in the installed set
            // (matching solve_exact's precedence).
            for &e in &self.disabled {
                model.fix_var(xs[e], 0.0);
            }
            self.budget_cache = Some(ModelCache {
                merged,
                model,
                xs,
                warm: None,
            });
        }
        let cache = self.budget_cache.as_mut().expect("built above");
        let budget_row = cache.model.constr(cache.model.constr_count() - 1);
        cache.model.set_rhs(budget_row, budget as f64);
        let mip_opts = MipOptions {
            max_nodes: opts.max_nodes,
            time_limit: opts.time_limit,
            warm_basis: true,
            ..Default::default()
        };
        let (sol, warm) = cache
            .model
            .solve_mip_warm(&mip_opts, cache.warm.as_ref())
            .expect("budget problem is always feasible");
        if warm.is_some() {
            cache.warm = warm;
        }
        let edges: Vec<usize> = (0..self.num_edges)
            .filter(|&e| sol.is_one(cache.xs[e], 1e-4))
            .collect();
        let coverage = inst.coverage(&edges);
        BudgetSolution {
            edges,
            coverage,
            total_volume: inst.total_volume(),
            proven_optimal: sol.status == SolveStatus::Optimal,
        }
    }

    /// Coverage gain (absolute volume) of buying `extra` devices on top
    /// of the installed base — [`crate::passive::expected_gain`], chained.
    pub fn expected_gain(&mut self, extra: usize, opts: &ExactOptions) -> f64 {
        let before = self.instance().coverage(&self.installed);
        let after = self.solve_budget(extra, opts).coverage;
        (after - before).max(0.0)
    }
}

/// The sorted support of pair `i` under `plan` (empty when disconnected).
fn support_of(plan: &RoutePlan, i: usize) -> Vec<usize> {
    match plan.routes(i).first() {
        Some(p) => {
            let mut s: Vec<usize> = p.edges().iter().map(|e| e.index()).collect();
            s.sort_unstable();
            s.dedup();
            s
        }
        None => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::fixture_figure3;
    use crate::passive::{solve_budget, solve_incremental, solve_ppm_exact};

    #[test]
    fn chain_matches_one_shot_on_figure3() {
        let inst = fixture_figure3();
        let mut delta = DeltaInstance::from_instance(&inst);
        let opts = ExactOptions::default();
        for k in [0.5, 0.75, 0.9, 1.0] {
            let chained = delta.solve_exact(k, &opts).unwrap();
            let fresh = solve_ppm_exact(&inst, k, &opts).unwrap();
            assert_eq!(chained.device_count(), fresh.device_count(), "k = {k}");
            assert!(inst.is_feasible(&chained.edges, k));
            assert!(chained.proven_optimal);
        }
    }

    #[test]
    fn chain_matches_incremental_with_installed_base() {
        let inst = fixture_figure3();
        let mut delta = DeltaInstance::from_instance(&inst);
        delta.set_installed(&[0]);
        let opts = ExactOptions::default();
        for k in [0.75, 1.0] {
            let chained = delta.solve_exact(k, &opts).unwrap();
            let fresh = solve_incremental(&inst, k, &[0], &opts).unwrap();
            assert_eq!(chained.device_count(), fresh.device_count(), "k = {k}");
            assert!(chained.edges.contains(&0), "installed device must stay");
        }
    }

    #[test]
    fn budget_chain_matches_one_shot() {
        let inst = fixture_figure3();
        let mut delta = DeltaInstance::from_instance(&inst);
        let opts = ExactOptions::default();
        for b in 0..=3 {
            let chained = delta.solve_budget(b, &opts);
            let fresh = solve_budget(&inst, b, &[], &opts);
            assert!(
                (chained.coverage - fresh.coverage).abs() < 1e-9,
                "budget = {b}"
            );
        }
    }

    #[test]
    fn structural_deltas_invalidate_and_stay_exact() {
        let inst = fixture_figure3();
        let mut delta = DeltaInstance::from_instance(&inst);
        let opts = ExactOptions::default();
        let _ = delta.solve_exact(1.0, &opts).unwrap();

        // Scale one demand, add a flow, remove a flow — after each delta
        // the chained answer must equal the one-shot answer on the
        // materialized instance.
        delta.scale_demand(0, 3.0);
        let t = delta.add_flow(2.5, vec![3, 4]);
        let a = delta.solve_exact(0.9, &opts).unwrap();
        let fresh = solve_ppm_exact(&delta.instance(), 0.9, &opts).unwrap();
        assert_eq!(a.device_count(), fresh.device_count());

        delta.remove_flow(t);
        let b = delta.solve_exact(0.9, &opts).unwrap();
        let fresh = solve_ppm_exact(&delta.instance(), 0.9, &opts).unwrap();
        assert_eq!(b.device_count(), fresh.device_count());
    }

    #[test]
    fn disabled_link_is_never_selected() {
        let inst = fixture_figure3();
        let mut delta = DeltaInstance::from_instance(&inst);
        let opts = ExactOptions::default();
        let free = delta.solve_exact(1.0, &opts).unwrap();
        assert_eq!(free.edges, vec![1, 2]);
        // Unrouted mode: failing link 1 only forbids the device there.
        delta.fail_link(1);
        let constrained = delta.solve_exact(1.0, &opts).unwrap();
        assert!(!constrained.edges.contains(&1));
        assert!(delta.instance().is_feasible(&constrained.edges, 1.0));
        assert!(constrained.device_count() >= free.device_count());
    }

    #[test]
    fn failing_an_installed_link_kills_its_device_in_both_solvers() {
        let inst = fixture_figure3();
        let opts = ExactOptions::default();
        let mut delta = DeltaInstance::from_instance(&inst);
        delta.set_installed(&[1]);
        delta.fail_link(1);
        // Exact: the dead device is gone and the cover must rebuild
        // around it.
        let exact = delta.solve_exact(1.0, &opts).unwrap();
        assert!(
            !exact.edges.contains(&1),
            "failed link must not host a device"
        );
        assert!(inst.is_feasible(&exact.edges, 1.0));
        // Budget: same precedence — with budget 0 nothing can be placed
        // and the dead installed device contributes no coverage.
        let b = delta.solve_budget(0, &opts);
        assert!(
            b.edges.is_empty(),
            "dead installed device must not count, got {:?}",
            b.edges
        );
        assert_eq!(b.coverage, 0.0);
    }

    #[test]
    fn routed_mode_reroutes_only_crossing_traffics() {
        use popgen::{PopSpec, TrafficSpec};

        let pop = PopSpec::paper_10().build();
        let ts = TrafficSpec::default().generate(&pop, 0);
        let mut delta = DeltaInstance::from_traffic(&pop.graph, &ts);

        // Unfailed routed supports must match the generator's own routing.
        let fresh = PpmInstance::from_traffic(&pop.graph, &ts);
        let routed = delta.instance();
        assert_eq!(routed.num_edges, fresh.num_edges);
        for (a, b) in routed.traffics.iter().zip(&fresh.traffics) {
            assert_eq!(a.0.to_bits(), b.0.to_bits());
            assert_eq!(a.1, b.1, "deterministic tie-breaking must agree");
        }

        // Fail the most loaded link: only its crossing traffics re-route.
        let loads = fresh.edge_loads();
        let heavy = (0..loads.len())
            .max_by(|&a, &b| loads[a].total_cmp(&loads[b]))
            .unwrap();
        let crossing = fresh
            .traffics
            .iter()
            .filter(|(_, s)| s.contains(&heavy))
            .count();
        let recomputed = delta.fail_link(heavy);
        assert_eq!(
            recomputed, crossing,
            "exactly the crossing traffics re-route"
        );
        let after = delta.instance();
        assert!(after.traffics.iter().all(|(_, s)| !s.contains(&heavy)));

        // And the graph-level ground truth: every re-routed support is the
        // shortest path avoiding the failed link.
        let banned = [netgraph::EdgeId(heavy as u32)];
        for (i, t) in ts.traffics.iter().enumerate() {
            let want: Vec<usize> = match netgraph::dijkstra::shortest_path_avoiding(
                &pop.graph,
                t.src,
                t.dst,
                &[],
                &banned,
            ) {
                Ok(p) => {
                    let mut s: Vec<usize> = p.edges().iter().map(|e| e.index()).collect();
                    s.sort_unstable();
                    s.dedup();
                    s
                }
                Err(_) => Vec::new(),
            };
            assert_eq!(after.traffics[i].1, want, "traffic {i}");
        }
    }
}
