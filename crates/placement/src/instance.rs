//! The Partial Passive Monitoring instance (paper Section 4.1).
//!
//! > INSTANCE: `k ∈ (0, 1]`, `G = (V, E)` a graph, `D = {(p_i, v_i)}` a set
//! > of weighted paths (traffics). `V = Σ v_i` is the total bandwidth.
//! >
//! > SOLUTION: a subset `E' ⊆ E` such that the sum of the weights of the
//! > paths that cross a selected edge is at least `k·V`.
//! >
//! > MEASURE: cardinality of `E'`.

use mcmf::mecf::MonitoringInstance;
use netgraph::{EdgeId, Graph};
use popgen::TrafficSet;

/// A `PPM(k)` instance: candidate edges and weighted traffic supports.
///
/// The instance stores, for each traffic, its volume and the *support*
/// (set of edge indices its path traverses). The graph itself is not
/// needed by the solvers — only the edge-path incidence matters — which is
/// exactly the observation behind Theorem 1.
#[derive(Debug, Clone)]
pub struct PpmInstance {
    /// Number of candidate edges (`|E|`).
    pub num_edges: usize,
    /// `(volume v_t, sorted duplicate-free support)` per traffic.
    pub traffics: Vec<(f64, Vec<usize>)>,
}

impl PpmInstance {
    /// Builds an instance from explicit supports.
    ///
    /// # Panics
    ///
    /// Panics when a support references an edge `≥ num_edges` or a volume
    /// is negative/NaN.
    pub fn new(num_edges: usize, traffics: Vec<(f64, Vec<usize>)>) -> Self {
        let mut cleaned = Vec::with_capacity(traffics.len());
        for (v, mut support) in traffics {
            assert!(
                v.is_finite() && v >= 0.0,
                "volume must be finite and >= 0, got {v}"
            );
            support.sort_unstable();
            support.dedup();
            if let Some(&max) = support.last() {
                assert!(
                    max < num_edges,
                    "support references edge {max} >= {num_edges}"
                );
            }
            cleaned.push((v, support));
        }
        Self {
            num_edges,
            traffics: cleaned,
        }
    }

    /// Builds the instance from a routed traffic matrix (the normal path in
    /// the experiments: `popgen` generates, this adapts).
    pub fn from_traffic(graph: &Graph, ts: &TrafficSet) -> Self {
        let traffics = ts
            .traffics
            .iter()
            .map(|t| {
                (
                    t.volume,
                    t.path.edges().iter().map(|e| e.index()).collect::<Vec<_>>(),
                )
            })
            .collect();
        Self::new(graph.edge_count(), traffics)
    }

    /// Total bandwidth `V`.
    pub fn total_volume(&self) -> f64 {
        self.traffics.iter().map(|&(v, _)| v).sum()
    }

    /// Load per edge.
    pub fn edge_loads(&self) -> Vec<f64> {
        let mut load = vec![0.0; self.num_edges];
        for (v, support) in &self.traffics {
            for &e in support {
                load[e] += v;
            }
        }
        load
    }

    /// Total volume of the traffics covered by `selected` (edge indices).
    pub fn coverage(&self, selected: &[usize]) -> f64 {
        let mut mask = vec![false; self.num_edges];
        for &e in selected {
            mask[e] = true;
        }
        self.coverage_mask(&mask)
    }

    /// Total volume of the traffics covered by a boolean edge mask.
    pub fn coverage_mask(&self, mask: &[bool]) -> f64 {
        self.traffics
            .iter()
            .filter(|(_, support)| support.iter().any(|&e| mask[e]))
            .map(|&(v, _)| v)
            .sum()
    }

    /// `true` when `selected` meets the `k` coverage target (with a small
    /// relative tolerance to absorb floating-point noise).
    pub fn is_feasible(&self, selected: &[usize], k: f64) -> bool {
        self.coverage(selected) + 1e-9 >= k * self.total_volume() - 1e-9
    }

    /// Merges traffics with identical supports, summing volumes, and drops
    /// zero-volume and empty-support traffics. Solvers call this first: on
    /// the 15-router POP it typically halves the row count of the MIP
    /// (forward and return paths share supports when routing is symmetric).
    ///
    /// Solutions of the merged instance are identical — coverage of any
    /// edge set is preserved by construction. Empty-support traffics can
    /// never be covered, so they are excluded from the objective and the
    /// caller should account for them via [`PpmInstance::uncoverable_volume`]
    /// on the *original* instance.
    pub fn merged(&self) -> PpmInstance {
        let mut sorted: Vec<(Vec<usize>, f64)> = self
            .traffics
            .iter()
            .filter(|(v, support)| *v > 0.0 && !support.is_empty())
            .map(|(v, support)| (support.clone(), *v))
            .collect();
        sorted.sort_by(|a, b| a.0.cmp(&b.0));
        let mut merged: Vec<(f64, Vec<usize>)> = Vec::new();
        for (support, v) in sorted {
            match merged.last_mut() {
                Some((lv, ls)) if *ls == support => *lv += v,
                _ => merged.push((v, support)),
            }
        }
        PpmInstance {
            num_edges: self.num_edges,
            traffics: merged,
        }
    }

    /// Volume of traffics whose support is empty (entry = exit router, or
    /// degenerate paths) — impossible to monitor on any link.
    pub fn uncoverable_volume(&self) -> f64 {
        self.traffics
            .iter()
            .filter(|(_, support)| support.is_empty())
            .map(|&(v, _)| v)
            .sum()
    }

    /// The maximum achievable coverage fraction (1 minus the uncoverable
    /// share); `PPM(k)` is infeasible beyond this.
    pub fn max_coverage_fraction(&self) -> f64 {
        let total = self.total_volume();
        if total <= 0.0 {
            return 1.0;
        }
        1.0 - self.uncoverable_volume() / total
    }

    /// Adapter to the index-based instance used by the flow crate.
    pub fn to_monitoring(&self) -> MonitoringInstance {
        MonitoringInstance {
            num_edges: self.num_edges,
            traffics: self.traffics.clone(),
        }
    }

    /// Supports as `EdgeId`s for interop with `netgraph`-typed callers.
    pub fn support_edges(&self, traffic: usize) -> Vec<EdgeId> {
        self.traffics[traffic]
            .1
            .iter()
            .map(|&e| EdgeId(e as u32))
            .collect()
    }
}

/// The paper's Figure 3 instance (greedy picks 3 devices, optimum is 2),
/// shared across tests in this crate.
#[cfg(test)]
pub(crate) fn fixture_figure3() -> PpmInstance {
    PpmInstance::new(
        5,
        vec![
            (2.0, vec![0, 1]),
            (2.0, vec![0, 2]),
            (1.0, vec![1, 3]),
            (1.0, vec![2, 4]),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use popgen::{PopSpec, TrafficSpec};

    fn figure3() -> PpmInstance {
        fixture_figure3()
    }

    #[test]
    fn totals_and_loads() {
        let inst = figure3();
        assert_eq!(inst.total_volume(), 6.0);
        assert_eq!(inst.edge_loads(), vec![4.0, 3.0, 3.0, 1.0, 1.0]);
    }

    #[test]
    fn coverage_and_feasibility() {
        let inst = figure3();
        assert_eq!(inst.coverage(&[0]), 4.0);
        assert_eq!(inst.coverage(&[1, 2]), 6.0);
        assert!(inst.is_feasible(&[1, 2], 1.0));
        assert!(!inst.is_feasible(&[0], 1.0));
        assert!(inst.is_feasible(&[0], 4.0 / 6.0));
    }

    #[test]
    fn merge_combines_identical_supports() {
        let inst = PpmInstance::new(
            3,
            vec![
                (1.0, vec![0, 1]),
                (2.0, vec![1, 0]), // same support, different order
                (3.0, vec![2]),
                (0.0, vec![0]), // zero volume dropped
                (4.0, vec![]),  // empty support dropped
            ],
        );
        let m = inst.merged();
        assert_eq!(m.traffics.len(), 2);
        assert_eq!(m.total_volume(), 6.0);
        assert_eq!(inst.uncoverable_volume(), 4.0);
        assert!((inst.max_coverage_fraction() - 6.0 / 10.0).abs() < 1e-12);
    }

    #[test]
    fn merge_preserves_coverage() {
        let pop = PopSpec::paper_10().build();
        let ts = TrafficSpec::default().generate(&pop, 3);
        let inst = PpmInstance::from_traffic(&pop.graph, &ts);
        let merged = inst.merged();
        assert!(
            merged.traffics.len() < inst.traffics.len(),
            "merging should shrink"
        );
        for sel in [vec![0], vec![1, 5], vec![0, 3, 7, 20]] {
            assert!((inst.coverage(&sel) - merged.coverage(&sel)).abs() < 1e-6);
        }
    }

    #[test]
    fn from_traffic_matches_edge_loads() {
        let pop = PopSpec::paper_10().build();
        let ts = TrafficSpec::default().generate(&pop, 3);
        let inst = PpmInstance::from_traffic(&pop.graph, &ts);
        assert_eq!(inst.num_edges, 27);
        assert_eq!(inst.traffics.len(), 132);
        let from_ts = ts.edge_loads(&pop.graph);
        let from_inst = inst.edge_loads();
        for (a, b) in from_ts.iter().zip(&from_inst) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "support references edge")]
    fn rejects_out_of_range_support() {
        PpmInstance::new(2, vec![(1.0, vec![5])]);
    }

    #[test]
    fn dedups_support() {
        let inst = PpmInstance::new(3, vec![(1.0, vec![2, 2, 0, 0])]);
        assert_eq!(inst.traffics[0].1, vec![0, 2]);
    }
}
