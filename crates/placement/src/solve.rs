//! The unified solve API: one typed request/outcome pair for every
//! placement entry point.
//!
//! The solver surface grew three call-signature dialects — the batch
//! functions ([`solve_ppm_exact`], [`greedy_static`], [`solve_budget`]),
//! the chained methods on [`DeltaInstance`], and the `popmond` service's
//! wire queries. [`SolveRequest`] → [`SolveOutcome`] unifies them: the
//! request carries the objective (`PPM(k)` or `APM`), the method (greedy
//! or exact), and the solver knobs that used to ride [`ExactOptions`];
//! the outcome is one enum over the existing solution types. Validation
//! ([`SolveRequest::validate`]) happens once, with typed
//! [`PlacementError`]s, before any solver state is touched.
//!
//! The pre-existing entry points remain as thin shims over this module
//! (or as the kernels it dispatches to) so solver behavior — and every
//! golden row derived from it — is byte-identical; prefer the unified API
//! in new code. See DESIGN.md § "The solve API" for the deprecation path.

use std::fmt;
use std::time::Duration;

use netgraph::{Graph, NodeId};

use crate::active::{compute_probes, place_beacons_greedy, place_beacons_ilp};
use crate::delta::DeltaInstance;
use crate::instance::PpmInstance;
use crate::passive::{
    greedy_static, solve_budget, solve_ppm_exact, BudgetSolution, ExactOptions, PpmSolution,
};

/// Typed validation error for placement requests and mutations — the
/// `placement`-side counterpart of `popgen::SpecError`: a stable field
/// name plus a human-readable reason, rendered as one line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlacementError {
    /// The offending parameter.
    pub field: &'static str,
    /// Why the value was rejected.
    pub message: String,
}

impl PlacementError {
    pub(crate) fn new(field: &'static str, message: impl Into<String>) -> Self {
        PlacementError {
            field,
            message: message.into(),
        }
    }
}

impl fmt::Display for PlacementError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid {}: {}", self.field, self.message)
    }
}

impl std::error::Error for PlacementError {}

/// What a solve optimizes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Objective {
    /// Passive monitoring: minimum devices covering fraction `k` of the
    /// traffic (`PPM(k)`), or maximum coverage under a device budget when
    /// [`SolveRequest::device_budget`] is set (ignores `k`).
    Ppm {
        /// Coverage fraction target, `∈ [0, 1]`.
        k: f64,
    },
    /// Active monitoring: beacon placement on a router graph.
    Apm,
}

/// Which solver family answers the request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveMethod {
    /// The paper's greedy (PPM: decreasing-load greedy; APM: improved
    /// greedy beacon placement). Never proven optimal.
    Greedy,
    /// Exact MIP/ILP under the request's node budget.
    Exact,
}

/// A validated solve request: objective, method, and the solver knobs
/// that previously rode [`ExactOptions`] (defaults match it exactly).
#[derive(Debug, Clone, PartialEq)]
pub struct SolveRequest {
    /// What to optimize.
    pub objective: Objective,
    /// Greedy or exact.
    pub method: SolveMethod,
    /// Branch-and-bound node budget for exact solves (≥ 1).
    pub node_budget: usize,
    /// `Some(b)`: maximum-coverage placement of at most `b` new devices
    /// (the budget variant) instead of minimum devices at target `k`.
    /// Exact PPM only.
    pub device_budget: Option<usize>,
    /// Optional wall-clock bound for exact solves (forfeits proven
    /// optimality on expiry; keep `None` in deterministic reports).
    pub time_limit: Option<Duration>,
    /// Relative MIP gap for exact solves.
    pub rel_gap: f64,
    /// Install a greedy incumbent before exact solves (plain instances).
    pub warm_start: bool,
}

impl SolveRequest {
    fn with_objective(objective: Objective) -> Self {
        let defaults = ExactOptions::default();
        SolveRequest {
            objective,
            method: SolveMethod::Exact,
            node_budget: defaults.max_nodes,
            device_budget: None,
            time_limit: defaults.time_limit,
            rel_gap: defaults.rel_gap,
            warm_start: defaults.warm_start,
        }
    }

    /// An exact `PPM(k)` request with default knobs.
    pub fn ppm(k: f64) -> Self {
        Self::with_objective(Objective::Ppm { k })
    }

    /// An exact budget request: maximum coverage with at most `budget`
    /// new devices (`k` is ignored by budget solves).
    pub fn budget(budget: usize) -> Self {
        let mut req = Self::ppm(1.0);
        req.device_budget = Some(budget);
        req
    }

    /// An exact `APM` request with default knobs.
    pub fn apm() -> Self {
        Self::with_objective(Objective::Apm)
    }

    /// Switches the request to the greedy method.
    pub fn greedy(mut self) -> Self {
        self.method = SolveMethod::Greedy;
        self
    }

    /// Switches the request to the exact method.
    pub fn exact(mut self) -> Self {
        self.method = SolveMethod::Exact;
        self
    }

    /// Sets the branch-and-bound node budget.
    pub fn with_node_budget(mut self, node_budget: usize) -> Self {
        self.node_budget = node_budget;
        self
    }

    /// Copies every solver knob from an [`ExactOptions`] (the bridge the
    /// deprecated shims use; [`SolveRequest::exact_options`] inverts it).
    pub fn with_exact_options(mut self, opts: &ExactOptions) -> Self {
        self.node_budget = opts.max_nodes;
        self.time_limit = opts.time_limit;
        self.rel_gap = opts.rel_gap;
        self.warm_start = opts.warm_start;
        self
    }

    /// The request's knobs as the kernel-level [`ExactOptions`].
    pub fn exact_options(&self) -> ExactOptions {
        ExactOptions {
            max_nodes: self.node_budget,
            time_limit: self.time_limit,
            rel_gap: self.rel_gap,
            warm_start: self.warm_start,
        }
    }

    /// Validates the request with typed errors (the same bounds the
    /// solvers assert, minus any instance-dependent checks).
    pub fn validate(&self) -> Result<(), PlacementError> {
        if let Objective::Ppm { k } = self.objective {
            // Mirrors the solver tolerance: sweeps may land a float hair
            // above 1.
            if !k.is_finite() || !(0.0..=1.0 + 1e-12).contains(&k) {
                return Err(PlacementError::new(
                    "k",
                    format!("monitoring fraction must lie in [0, 1], got {k}"),
                ));
            }
        }
        if self.node_budget == 0 {
            return Err(PlacementError::new(
                "node_budget",
                "must be at least 1".to_string(),
            ));
        }
        if !self.rel_gap.is_finite() || self.rel_gap < 0.0 {
            return Err(PlacementError::new(
                "rel_gap",
                format!("must be finite and >= 0, got {}", self.rel_gap),
            ));
        }
        if self.device_budget.is_some() {
            if self.objective == Objective::Apm {
                return Err(PlacementError::new(
                    "device_budget",
                    "budget solves are PPM-only".to_string(),
                ));
            }
            if self.method == SolveMethod::Greedy {
                return Err(PlacementError::new(
                    "device_budget",
                    "budget solves use the exact method".to_string(),
                ));
            }
        }
        Ok(())
    }
}

/// An active (beacon) placement on a router graph, with the probe-phase
/// counters the service reports.
#[derive(Debug, Clone, PartialEq)]
pub struct ApmSolution {
    /// Beacon node indices (in the solved graph's numbering), ascending.
    pub beacons: Vec<usize>,
    /// Number of probes in the computed probe set.
    pub probes: usize,
    /// Links the probe set covers.
    pub covered_links: usize,
    /// Links in the solved (router) graph.
    pub router_links: usize,
    /// `true` when the ILP proved optimality (greedy never does).
    pub proven_optimal: bool,
}

/// The outcome of a unified solve: one enum over the existing solution
/// types, plus the explicit infeasible case.
#[derive(Debug, Clone, PartialEq)]
pub enum SolveOutcome {
    /// The coverage target is unreachable on this instance.
    Unreachable,
    /// A passive (tap) placement.
    Ppm(PpmSolution),
    /// A budget-constrained maximum-coverage placement.
    Budget(BudgetSolution),
    /// An active (beacon) placement.
    Apm(ApmSolution),
}

/// Solves a one-shot PPM request on a static instance, dispatching to the
/// batch kernels ([`solve_ppm_exact`] / [`greedy_static`] /
/// [`solve_budget`]). APM requests are rejected here — they need a router
/// graph, not an edge-support instance; use [`solve_apm`].
pub fn solve_instance(
    inst: &PpmInstance,
    req: &SolveRequest,
) -> Result<SolveOutcome, PlacementError> {
    req.validate()?;
    let Objective::Ppm { k } = req.objective else {
        return Err(PlacementError::new(
            "objective",
            "APM solves need a router graph; use solve_apm".to_string(),
        ));
    };
    if let Some(budget) = req.device_budget {
        return Ok(SolveOutcome::Budget(solve_budget(
            inst,
            budget,
            &[],
            &req.exact_options(),
        )));
    }
    let sol = match req.method {
        SolveMethod::Exact => solve_ppm_exact(inst, k, &req.exact_options()),
        SolveMethod::Greedy => greedy_static(inst, k),
    };
    Ok(match sol {
        Some(s) => SolveOutcome::Ppm(s),
        None => SolveOutcome::Unreachable,
    })
}

/// Solves an APM request on a (router) graph: probe computation followed
/// by greedy or ILP beacon placement, every node a candidate.
pub fn solve_apm(graph: &Graph, req: &SolveRequest) -> Result<SolveOutcome, PlacementError> {
    req.validate()?;
    if req.objective != Objective::Apm {
        return Err(PlacementError::new(
            "objective",
            "solve_apm answers APM requests only".to_string(),
        ));
    }
    let candidates: Vec<NodeId> = graph.nodes().collect();
    let probes = compute_probes(graph, &candidates);
    let placement = match req.method {
        SolveMethod::Greedy => place_beacons_greedy(&probes, &candidates),
        SolveMethod::Exact => place_beacons_ilp(graph, &probes, &candidates),
    };
    Ok(SolveOutcome::Apm(ApmSolution {
        beacons: placement.beacons.iter().map(|b| b.index()).collect(),
        probes: probes.len(),
        covered_links: probes.covered.iter().filter(|&&c| c).count(),
        router_links: graph.edge_count(),
        proven_optimal: placement.proven_optimal,
    }))
}

/// The paper's decreasing-load greedy, lifted to a constrained state:
/// pre-installed devices contribute their coverage for free (dead ones on
/// failed links do not — failure beats installation, matching
/// [`DeltaInstance::solve_exact`]), failed links can never host a device,
/// and the greedy covers the residual target on the masked instance.
/// `installed` and `disabled` must be sorted.
pub fn greedy_constrained(
    inst: &PpmInstance,
    installed: &[usize],
    disabled: &[usize],
    k: f64,
) -> Option<PpmSolution> {
    if installed.is_empty() && disabled.is_empty() {
        return greedy_static(inst, k);
    }
    let live: Vec<usize> = installed
        .iter()
        .copied()
        .filter(|e| disabled.binary_search(e).is_err())
        .collect();
    let target = k * inst.total_volume();
    let base = inst.coverage(&live);
    if base + 1e-9 >= target {
        return Some(PpmSolution::from_edges(inst, live, false));
    }
    // Residual instance: traffics already covered by the live installed
    // set drop out; the rest lose their failed links (a support that
    // empties becomes uncoverable, as in routed failures).
    let residual: Vec<(f64, Vec<usize>)> = inst
        .traffics
        .iter()
        .filter(|(_, s)| !s.iter().any(|e| live.binary_search(e).is_ok()))
        .map(|(v, s)| {
            (
                *v,
                s.iter()
                    .copied()
                    .filter(|e| disabled.binary_search(e).is_err())
                    .collect(),
            )
        })
        .collect();
    let masked = PpmInstance::new(inst.num_edges, residual);
    let sub_total = masked.total_volume();
    if sub_total <= 0.0 {
        return None;
    }
    let k_residual = ((target - base) / sub_total).min(1.0);
    let picked = greedy_static(&masked, k_residual)?;
    let mut edges = live;
    edges.extend(&picked.edges);
    edges.sort_unstable();
    edges.dedup();
    Some(PpmSolution::from_edges(inst, edges, false))
}

impl DeltaInstance {
    /// Solves a unified request on the chain's current state — the one
    /// dispatch the deprecated [`DeltaInstance::solve_exact`] /
    /// [`DeltaInstance::solve_budget`] shims and the `popmond` service
    /// route through. Exact solves ride the warm chain; greedy solves run
    /// [`greedy_constrained`] on the materialized instance. APM requests
    /// are rejected (they need a router graph; use [`solve_apm`]).
    pub fn solve(&mut self, req: &SolveRequest) -> Result<SolveOutcome, PlacementError> {
        req.validate()?;
        let Objective::Ppm { k } = req.objective else {
            return Err(PlacementError::new(
                "objective",
                "APM solves need a router graph; use solve_apm".to_string(),
            ));
        };
        if let Some(budget) = req.device_budget {
            return Ok(SolveOutcome::Budget(
                self.solve_budget_core(budget, &req.exact_options()),
            ));
        }
        let sol = match req.method {
            SolveMethod::Exact => self.solve_exact_core(k, &req.exact_options()),
            SolveMethod::Greedy => {
                let inst = self.instance();
                greedy_constrained(&inst, self.installed(), self.disabled(), k)
            }
        };
        Ok(match sol {
            Some(s) => SolveOutcome::Ppm(s),
            None => SolveOutcome::Unreachable,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure3() -> PpmInstance {
        PpmInstance::new(
            5,
            vec![
                (2.0, vec![0, 1]),
                (2.0, vec![0, 2]),
                (1.0, vec![1, 3]),
                (1.0, vec![2, 4]),
            ],
        )
    }

    #[test]
    fn unified_request_matches_the_kernels() {
        let inst = figure3();
        let opts = ExactOptions::default();
        for k in [0.5, 0.75, 1.0] {
            let unified = solve_instance(&inst, &SolveRequest::ppm(k)).unwrap();
            let kernel = solve_ppm_exact(&inst, k, &opts).unwrap();
            let SolveOutcome::Ppm(sol) = unified else {
                panic!("expected a PPM outcome");
            };
            assert_eq!(sol.device_count(), kernel.device_count(), "k = {k}");

            let unified = solve_instance(&inst, &SolveRequest::ppm(k).greedy()).unwrap();
            let kernel = greedy_static(&inst, k).unwrap();
            let SolveOutcome::Ppm(sol) = unified else {
                panic!("expected a PPM outcome");
            };
            assert_eq!(sol.edges, kernel.edges, "k = {k}");
        }
        for b in 0..=3 {
            let unified = solve_instance(&inst, &SolveRequest::budget(b)).unwrap();
            let kernel = solve_budget(&inst, b, &[], &opts);
            let SolveOutcome::Budget(sol) = unified else {
                panic!("expected a budget outcome");
            };
            assert_eq!(sol.coverage.to_bits(), kernel.coverage.to_bits(), "b = {b}");
        }
    }

    #[test]
    fn delta_solve_matches_the_shims() {
        let inst = figure3();
        let mut a = DeltaInstance::from_instance(&inst);
        let mut b = DeltaInstance::from_instance(&inst);
        let opts = ExactOptions::default();
        for k in [0.5, 1.0] {
            let via_request = a.solve(&SolveRequest::ppm(k)).unwrap();
            let via_shim = b.solve_exact(k, &opts).unwrap();
            let SolveOutcome::Ppm(sol) = via_request else {
                panic!("expected a PPM outcome");
            };
            assert_eq!(sol.device_count(), via_shim.device_count(), "k = {k}");
        }
    }

    #[test]
    fn validation_rejects_bad_requests() {
        for (req, field) in [
            (SolveRequest::ppm(1.5), "k"),
            (SolveRequest::ppm(f64::NAN), "k"),
            (SolveRequest::ppm(0.5).with_node_budget(0), "node_budget"),
            (SolveRequest::budget(2).greedy(), "device_budget"),
            (
                {
                    let mut r = SolveRequest::apm();
                    r.device_budget = Some(1);
                    r
                },
                "device_budget",
            ),
        ] {
            assert_eq!(req.validate().unwrap_err().field, field, "{req:?}");
        }
        let inst = figure3();
        assert_eq!(
            solve_instance(&inst, &SolveRequest::apm())
                .unwrap_err()
                .field,
            "objective"
        );
    }

    #[test]
    fn exact_options_round_trip() {
        let opts = ExactOptions {
            max_nodes: 123,
            time_limit: Some(Duration::from_millis(7)),
            warm_start: false,
            rel_gap: 0.25,
        };
        let req = SolveRequest::ppm(0.5).with_exact_options(&opts);
        let back = req.exact_options();
        assert_eq!(back.max_nodes, opts.max_nodes);
        assert_eq!(back.time_limit, opts.time_limit);
        assert_eq!(back.warm_start, opts.warm_start);
        assert_eq!(back.rel_gap, opts.rel_gap);
    }

    #[test]
    fn apm_solves_on_a_small_graph() {
        use netgraph::GraphBuilder;
        let mut b = GraphBuilder::new();
        let nodes = b.add_nodes("r", 4);
        b.add_edge(nodes[0], nodes[1], 1.0);
        b.add_edge(nodes[1], nodes[2], 1.0);
        b.add_edge(nodes[2], nodes[3], 1.0);
        let graph = b.build();
        for req in [SolveRequest::apm(), SolveRequest::apm().greedy()] {
            let SolveOutcome::Apm(sol) = solve_apm(&graph, &req).unwrap() else {
                panic!("expected an APM outcome");
            };
            assert!(!sol.beacons.is_empty());
            assert_eq!(sol.router_links, 3);
        }
        assert_eq!(
            solve_apm(&graph, &SolveRequest::ppm(0.5))
                .unwrap_err()
                .field,
            "objective"
        );
    }
}
