//! The unified solve API: one typed request/outcome pair for every
//! placement entry point.
//!
//! The solver surface grew three call-signature dialects — the batch
//! functions ([`solve_ppm_exact`](crate::passive::solve_ppm_exact),
//! [`greedy_static`], [`solve_budget`](crate::passive::solve_budget)),
//! the chained methods on [`DeltaInstance`], and the `popmond` service's
//! wire queries. [`SolveRequest`] → [`SolveOutcome`] unifies them: the
//! request carries the objective (`PPM(k)` or `APM`), the method (greedy
//! or exact), and the solver knobs that used to ride [`ExactOptions`];
//! the outcome is one enum over the existing solution types. Validation
//! ([`SolveRequest::validate`]) happens once, with typed
//! [`PlacementError`]s, before any solver state is touched.
//!
//! The pre-existing entry points remain as thin shims over this module
//! (or as the kernels it dispatches to) so solver behavior — and every
//! golden row derived from it — is byte-identical; prefer the unified API
//! in new code. See DESIGN.md § "The solve API" for the deprecation path.

use std::fmt;
use std::time::Duration;

use netgraph::{Graph, NodeId};

use crate::active::{compute_probes, place_beacons_greedy, place_beacons_ilp};
use crate::delta::DeltaInstance;
use crate::instance::PpmInstance;
use crate::passive::{
    greedy_static, solve_budget_anytime, solve_ppm_exact_anytime, BudgetSolution, ExactOptions,
    PpmSolution,
};

/// Typed validation error for placement requests and mutations — the
/// `placement`-side counterpart of `popgen::SpecError`: a stable field
/// name plus a human-readable reason, rendered as one line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlacementError {
    /// The offending parameter.
    pub field: &'static str,
    /// Why the value was rejected.
    pub message: String,
}

impl PlacementError {
    pub(crate) fn new(field: &'static str, message: impl Into<String>) -> Self {
        PlacementError {
            field,
            message: message.into(),
        }
    }
}

impl fmt::Display for PlacementError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid {}: {}", self.field, self.message)
    }
}

impl std::error::Error for PlacementError {}

/// What a solve optimizes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Objective {
    /// Passive monitoring: minimum devices covering fraction `k` of the
    /// traffic (`PPM(k)`), or maximum coverage under a device budget when
    /// [`SolveRequest::device_budget`] is set (ignores `k`).
    Ppm {
        /// Coverage fraction target, `∈ [0, 1]`.
        k: f64,
    },
    /// Active monitoring: beacon placement on a router graph.
    Apm,
}

/// Which solver family answers the request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveMethod {
    /// The paper's greedy (PPM: decreasing-load greedy; APM: improved
    /// greedy beacon placement). Never proven optimal.
    Greedy,
    /// Exact MIP/ILP under the request's node budget.
    Exact,
}

/// A validated solve request: objective, method, and the solver knobs
/// that previously rode [`ExactOptions`] (defaults match it exactly).
#[derive(Debug, Clone, PartialEq)]
pub struct SolveRequest {
    /// What to optimize.
    pub objective: Objective,
    /// Greedy or exact.
    pub method: SolveMethod,
    /// Branch-and-bound node budget for exact solves (≥ 1).
    pub node_budget: usize,
    /// `Some(b)`: maximum-coverage placement of at most `b` new devices
    /// (the budget variant) instead of minimum devices at target `k`.
    /// Exact PPM only.
    pub device_budget: Option<usize>,
    /// Optional wall-clock bound for exact solves (forfeits proven
    /// optimality on expiry; keep `None` in deterministic reports).
    pub time_limit: Option<Duration>,
    /// Relative MIP gap for exact solves.
    pub rel_gap: f64,
    /// Install a greedy incumbent before exact solves (plain instances).
    pub warm_start: bool,
    /// Deterministic work budget for exact solves (simplex iterations +
    /// refactorizations + branch-and-bound nodes). `None` (the default)
    /// runs to the legacy limits, byte-identical to the pre-budget
    /// behavior; `Some(units)` makes the solve *anytime*: when the budget
    /// trips, the dispatcher returns [`SolveOutcome::Degraded`] carrying
    /// the partial exact answer (or a greedy fallback) instead of
    /// blocking until branch-and-bound finishes.
    pub work_budget: Option<u64>,
}

impl SolveRequest {
    fn with_objective(objective: Objective) -> Self {
        let defaults = ExactOptions::default();
        SolveRequest {
            objective,
            method: SolveMethod::Exact,
            node_budget: defaults.max_nodes,
            device_budget: None,
            time_limit: defaults.time_limit,
            rel_gap: defaults.rel_gap,
            warm_start: defaults.warm_start,
            work_budget: defaults.work_budget,
        }
    }

    /// An exact `PPM(k)` request with default knobs.
    pub fn ppm(k: f64) -> Self {
        Self::with_objective(Objective::Ppm { k })
    }

    /// An exact budget request: maximum coverage with at most `budget`
    /// new devices (`k` is ignored by budget solves).
    pub fn budget(budget: usize) -> Self {
        let mut req = Self::ppm(1.0);
        req.device_budget = Some(budget);
        req
    }

    /// An exact `APM` request with default knobs.
    pub fn apm() -> Self {
        Self::with_objective(Objective::Apm)
    }

    /// Switches the request to the greedy method.
    pub fn greedy(mut self) -> Self {
        self.method = SolveMethod::Greedy;
        self
    }

    /// Switches the request to the exact method.
    pub fn exact(mut self) -> Self {
        self.method = SolveMethod::Exact;
        self
    }

    /// Sets the branch-and-bound node budget.
    pub fn with_node_budget(mut self, node_budget: usize) -> Self {
        self.node_budget = node_budget;
        self
    }

    /// Caps the exact solve at `units` deterministic work units (see
    /// [`SolveRequest::work_budget`]): the solve becomes *anytime* and may
    /// return [`SolveOutcome::Degraded`].
    pub fn with_work_budget(mut self, units: u64) -> Self {
        self.work_budget = Some(units);
        self
    }

    /// Copies every solver knob from an [`ExactOptions`] (the bridge the
    /// deprecated shims use; [`SolveRequest::exact_options`] inverts it).
    pub fn with_exact_options(mut self, opts: &ExactOptions) -> Self {
        self.node_budget = opts.max_nodes;
        self.time_limit = opts.time_limit;
        self.rel_gap = opts.rel_gap;
        self.warm_start = opts.warm_start;
        self.work_budget = opts.work_budget;
        self
    }

    /// The request's knobs as the kernel-level [`ExactOptions`].
    pub fn exact_options(&self) -> ExactOptions {
        ExactOptions {
            max_nodes: self.node_budget,
            time_limit: self.time_limit,
            rel_gap: self.rel_gap,
            warm_start: self.warm_start,
            work_budget: self.work_budget,
        }
    }

    /// Validates the request with typed errors (the same bounds the
    /// solvers assert, minus any instance-dependent checks).
    pub fn validate(&self) -> Result<(), PlacementError> {
        if let Objective::Ppm { k } = self.objective {
            // Mirrors the solver tolerance: sweeps may land a float hair
            // above 1.
            if !k.is_finite() || !(0.0..=1.0 + 1e-12).contains(&k) {
                return Err(PlacementError::new(
                    "k",
                    format!("monitoring fraction must lie in [0, 1], got {k}"),
                ));
            }
        }
        if self.node_budget == 0 {
            return Err(PlacementError::new(
                "node_budget",
                "must be at least 1".to_string(),
            ));
        }
        if !self.rel_gap.is_finite() || self.rel_gap < 0.0 {
            return Err(PlacementError::new(
                "rel_gap",
                format!("must be finite and >= 0, got {}", self.rel_gap),
            ));
        }
        if self.device_budget.is_some() {
            if self.objective == Objective::Apm {
                return Err(PlacementError::new(
                    "device_budget",
                    "budget solves are PPM-only".to_string(),
                ));
            }
            if self.method == SolveMethod::Greedy {
                return Err(PlacementError::new(
                    "device_budget",
                    "budget solves use the exact method".to_string(),
                ));
            }
        }
        Ok(())
    }
}

/// An active (beacon) placement on a router graph, with the probe-phase
/// counters the service reports.
#[derive(Debug, Clone, PartialEq)]
pub struct ApmSolution {
    /// Beacon node indices (in the solved graph's numbering), ascending.
    pub beacons: Vec<usize>,
    /// Number of probes in the computed probe set.
    pub probes: usize,
    /// Links the probe set covers.
    pub covered_links: usize,
    /// Links in the solved (router) graph.
    pub router_links: usize,
    /// `true` when the ILP proved optimality (greedy never does).
    pub proven_optimal: bool,
}

/// Why a budget-tripped solve came back [`SolveOutcome::Degraded`] with
/// the answer it did — the degradation reason that rides the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradeReason {
    /// Branch-and-bound was interrupted holding an incumbent: the partial
    /// exact answer is returned (feasible, optimality unproven).
    PartialExact,
    /// The budget tripped before any incumbent existed: the paper's
    /// greedy supplied the answer instead.
    GreedyFallback,
}

impl DegradeReason {
    /// Stable wire token for the reason (`partial_exact` /
    /// `greedy_fallback`).
    pub fn as_str(self) -> &'static str {
        match self {
            DegradeReason::PartialExact => "partial_exact",
            DegradeReason::GreedyFallback => "greedy_fallback",
        }
    }
}

/// The outcome of a unified solve: one enum over the existing solution
/// types, plus the explicit infeasible case.
#[derive(Debug, Clone, PartialEq)]
pub enum SolveOutcome {
    /// The coverage target is unreachable on this instance.
    Unreachable,
    /// A passive (tap) placement.
    Ppm(PpmSolution),
    /// A budget-constrained maximum-coverage placement.
    Budget(BudgetSolution),
    /// An active (beacon) placement.
    Apm(ApmSolution),
    /// An anytime solve whose work budget tripped before proven
    /// optimality: the best answer available plus the anytime record
    /// (`bound ≤ optimal ≤ partial` in the solve's objective sense).
    Degraded {
        /// The degraded answer — a [`SolveOutcome::Ppm`],
        /// [`SolveOutcome::Budget`], or [`SolveOutcome::Unreachable`]
        /// (when even the greedy fallback cannot reach the target); never
        /// itself `Degraded`.
        partial: Box<SolveOutcome>,
        /// Where the answer came from.
        reason: DegradeReason,
        /// Deterministic work units spent when the budget tripped.
        work_spent: u64,
        /// Dual bound proven before interruption, in the solve's own
        /// objective sense (a lower bound on the device count for PPM, an
        /// upper bound on the coverage for budget solves). Infinite when
        /// the budget tripped before the root relaxation finished.
        bound: f64,
    },
}

/// Kernel-level anytime result: the finished answer, or the record of a
/// work-budget interruption with whatever incumbent survived. Mapped onto
/// [`SolveOutcome::Degraded`] by the unified dispatchers.
#[derive(Debug, Clone)]
pub(crate) enum Anytime<T> {
    /// The solve ran to its normal end (no budget, or it never tripped).
    Done(T),
    /// The work budget tripped mid-search.
    Cut {
        /// Best incumbent at interruption, if any.
        incumbent: Option<T>,
        /// Dual bound proven so far, in the solve's objective sense.
        bound: f64,
        /// Work units spent when the budget tripped.
        work_spent: u64,
    },
}

/// Maps a PPM kernel attempt onto the outcome surface, running `fallback`
/// (the paper's greedy on the same constrained state) when the budget
/// tripped before any incumbent existed.
fn ppm_outcome(
    attempt: Anytime<Option<PpmSolution>>,
    fallback: impl FnOnce() -> Option<PpmSolution>,
) -> SolveOutcome {
    match attempt {
        Anytime::Done(Some(s)) => SolveOutcome::Ppm(s),
        Anytime::Done(None) => SolveOutcome::Unreachable,
        Anytime::Cut {
            incumbent,
            bound,
            work_spent,
        } => {
            let (partial, reason) = match incumbent.flatten() {
                Some(s) => (SolveOutcome::Ppm(s), DegradeReason::PartialExact),
                None => match fallback() {
                    Some(g) => (SolveOutcome::Ppm(g), DegradeReason::GreedyFallback),
                    None => (SolveOutcome::Unreachable, DegradeReason::GreedyFallback),
                },
            };
            SolveOutcome::Degraded {
                partial: Box::new(partial),
                reason,
                work_spent,
                bound,
            }
        }
    }
}

/// [`ppm_outcome`]'s sibling for budget solves (the greedy fallback always
/// produces a placement — the budget problem is feasible by construction).
fn budget_outcome(
    attempt: Anytime<BudgetSolution>,
    fallback: impl FnOnce() -> BudgetSolution,
) -> SolveOutcome {
    match attempt {
        Anytime::Done(s) => SolveOutcome::Budget(s),
        Anytime::Cut {
            incumbent,
            bound,
            work_spent,
        } => {
            let (partial, reason) = match incumbent {
                Some(s) => (SolveOutcome::Budget(s), DegradeReason::PartialExact),
                None => (
                    SolveOutcome::Budget(fallback()),
                    DegradeReason::GreedyFallback,
                ),
            };
            SolveOutcome::Degraded {
                partial: Box::new(partial),
                reason,
                work_spent,
                bound,
            }
        }
    }
}

/// Solves a one-shot PPM request on a static instance, dispatching to the
/// batch kernels ([`solve_ppm_exact`] / [`greedy_static`] /
/// [`solve_budget`]). APM requests are rejected here — they need a router
/// graph, not an edge-support instance; use [`solve_apm`].
pub fn solve_instance(
    inst: &PpmInstance,
    req: &SolveRequest,
) -> Result<SolveOutcome, PlacementError> {
    req.validate()?;
    let Objective::Ppm { k } = req.objective else {
        return Err(PlacementError::new(
            "objective",
            "APM solves need a router graph; use solve_apm".to_string(),
        ));
    };
    if let Some(budget) = req.device_budget {
        return Ok(budget_outcome(
            solve_budget_anytime(inst, budget, &[], &req.exact_options()),
            || greedy_budget(inst, budget, &[], &[]),
        ));
    }
    let attempt = match req.method {
        SolveMethod::Exact => solve_ppm_exact_anytime(inst, k, &req.exact_options()),
        SolveMethod::Greedy => Anytime::Done(greedy_static(inst, k)),
    };
    Ok(ppm_outcome(attempt, || {
        greedy_constrained(inst, &[], &[], k)
    }))
}

/// Solves an APM request on a (router) graph: probe computation followed
/// by greedy or ILP beacon placement, every node a candidate.
pub fn solve_apm(graph: &Graph, req: &SolveRequest) -> Result<SolveOutcome, PlacementError> {
    req.validate()?;
    if req.objective != Objective::Apm {
        return Err(PlacementError::new(
            "objective",
            "solve_apm answers APM requests only".to_string(),
        ));
    }
    let candidates: Vec<NodeId> = graph.nodes().collect();
    let probes = compute_probes(graph, &candidates);
    let placement = match req.method {
        SolveMethod::Greedy => place_beacons_greedy(&probes, &candidates),
        SolveMethod::Exact => place_beacons_ilp(graph, &probes, &candidates),
    };
    Ok(SolveOutcome::Apm(ApmSolution {
        beacons: placement.beacons.iter().map(|b| b.index()).collect(),
        probes: probes.len(),
        covered_links: probes.covered.iter().filter(|&&c| c).count(),
        router_links: graph.edge_count(),
        proven_optimal: placement.proven_optimal,
    }))
}

/// The paper's decreasing-load greedy, lifted to a constrained state:
/// pre-installed devices contribute their coverage for free (dead ones on
/// failed links do not — failure beats installation, matching
/// [`DeltaInstance::solve_exact`]), failed links can never host a device,
/// and the greedy covers the residual target on the masked instance.
/// `installed` and `disabled` must be sorted.
pub fn greedy_constrained(
    inst: &PpmInstance,
    installed: &[usize],
    disabled: &[usize],
    k: f64,
) -> Option<PpmSolution> {
    if installed.is_empty() && disabled.is_empty() {
        return greedy_static(inst, k);
    }
    let live: Vec<usize> = installed
        .iter()
        .copied()
        .filter(|e| disabled.binary_search(e).is_err())
        .collect();
    let target = k * inst.total_volume();
    let base = inst.coverage(&live);
    if base + 1e-9 >= target {
        return Some(PpmSolution::from_edges(inst, live, false));
    }
    // Residual instance: traffics already covered by the live installed
    // set drop out; the rest lose their failed links (a support that
    // empties becomes uncoverable, as in routed failures).
    let residual: Vec<(f64, Vec<usize>)> = inst
        .traffics
        .iter()
        .filter(|(_, s)| !s.iter().any(|e| live.binary_search(e).is_ok()))
        .map(|(v, s)| {
            (
                *v,
                s.iter()
                    .copied()
                    .filter(|e| disabled.binary_search(e).is_err())
                    .collect(),
            )
        })
        .collect();
    let masked = PpmInstance::new(inst.num_edges, residual);
    let sub_total = masked.total_volume();
    if sub_total <= 0.0 {
        return None;
    }
    let k_residual = ((target - base) / sub_total).min(1.0);
    let picked = greedy_static(&masked, k_residual)?;
    let mut edges = live;
    edges.extend(&picked.edges);
    edges.sort_unstable();
    edges.dedup();
    Some(PpmSolution::from_edges(inst, edges, false))
}

/// The greedy counterpart of the budget MIP, used as the degradation
/// fallback: live installed devices contribute their coverage for free
/// (failure beats installation), then up to `budget` new devices are
/// added one at a time by best marginal coverage gain, skipping failed
/// links. Never proven optimal. `installed` and `disabled` must be
/// sorted.
pub fn greedy_budget(
    inst: &PpmInstance,
    budget: usize,
    installed: &[usize],
    disabled: &[usize],
) -> BudgetSolution {
    let mut edges: Vec<usize> = installed
        .iter()
        .copied()
        .filter(|e| disabled.binary_search(e).is_err())
        .collect();
    let mut coverage = inst.coverage(&edges);
    for _ in 0..budget {
        let mut best: Option<(usize, f64)> = None;
        for e in 0..inst.num_edges {
            if disabled.binary_search(&e).is_ok() || edges.contains(&e) {
                continue;
            }
            let mut trial = edges.clone();
            trial.push(e);
            let gain = inst.coverage(&trial) - coverage;
            if gain > best.map_or(0.0, |(_, g)| g) {
                best = Some((e, gain));
            }
        }
        let Some((e, gain)) = best else { break };
        edges.push(e);
        coverage += gain;
    }
    edges.sort_unstable();
    BudgetSolution {
        coverage: inst.coverage(&edges),
        total_volume: inst.total_volume(),
        proven_optimal: false,
        edges,
    }
}

impl DeltaInstance {
    /// Solves a unified request on the chain's current state — the one
    /// dispatch the deprecated [`DeltaInstance::solve_exact`] /
    /// [`DeltaInstance::solve_budget`] shims and the `popmond` service
    /// route through. Exact solves ride the warm chain; greedy solves run
    /// [`greedy_constrained`] on the materialized instance. APM requests
    /// are rejected (they need a router graph; use [`solve_apm`]).
    ///
    /// With [`SolveRequest::work_budget`] set the exact solves are
    /// *anytime*: a tripped budget yields [`SolveOutcome::Degraded`] with
    /// the incumbent or a [`greedy_constrained`] / [`greedy_budget`]
    /// fallback on the same constrained state.
    pub fn solve(&mut self, req: &SolveRequest) -> Result<SolveOutcome, PlacementError> {
        req.validate()?;
        let Objective::Ppm { k } = req.objective else {
            return Err(PlacementError::new(
                "objective",
                "APM solves need a router graph; use solve_apm".to_string(),
            ));
        };
        if let Some(budget) = req.device_budget {
            let attempt = self.solve_budget_core(budget, &req.exact_options());
            return Ok(budget_outcome(attempt, || {
                greedy_budget(&self.instance(), budget, self.installed(), self.disabled())
            }));
        }
        let attempt = match req.method {
            SolveMethod::Exact => self.solve_exact_core(k, &req.exact_options()),
            SolveMethod::Greedy => {
                let inst = self.instance();
                Anytime::Done(greedy_constrained(
                    &inst,
                    self.installed(),
                    self.disabled(),
                    k,
                ))
            }
        };
        Ok(ppm_outcome(attempt, || {
            greedy_constrained(&self.instance(), self.installed(), self.disabled(), k)
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passive::{solve_budget, solve_ppm_exact};

    fn figure3() -> PpmInstance {
        PpmInstance::new(
            5,
            vec![
                (2.0, vec![0, 1]),
                (2.0, vec![0, 2]),
                (1.0, vec![1, 3]),
                (1.0, vec![2, 4]),
            ],
        )
    }

    #[test]
    fn unified_request_matches_the_kernels() {
        let inst = figure3();
        let opts = ExactOptions::default();
        for k in [0.5, 0.75, 1.0] {
            let unified = solve_instance(&inst, &SolveRequest::ppm(k)).unwrap();
            let kernel = solve_ppm_exact(&inst, k, &opts).unwrap();
            let SolveOutcome::Ppm(sol) = unified else {
                panic!("expected a PPM outcome");
            };
            assert_eq!(sol.device_count(), kernel.device_count(), "k = {k}");

            let unified = solve_instance(&inst, &SolveRequest::ppm(k).greedy()).unwrap();
            let kernel = greedy_static(&inst, k).unwrap();
            let SolveOutcome::Ppm(sol) = unified else {
                panic!("expected a PPM outcome");
            };
            assert_eq!(sol.edges, kernel.edges, "k = {k}");
        }
        for b in 0..=3 {
            let unified = solve_instance(&inst, &SolveRequest::budget(b)).unwrap();
            let kernel = solve_budget(&inst, b, &[], &opts);
            let SolveOutcome::Budget(sol) = unified else {
                panic!("expected a budget outcome");
            };
            assert_eq!(sol.coverage.to_bits(), kernel.coverage.to_bits(), "b = {b}");
        }
    }

    #[test]
    fn delta_solve_matches_the_shims() {
        let inst = figure3();
        let mut a = DeltaInstance::from_instance(&inst);
        let mut b = DeltaInstance::from_instance(&inst);
        let opts = ExactOptions::default();
        for k in [0.5, 1.0] {
            let via_request = a.solve(&SolveRequest::ppm(k)).unwrap();
            let via_shim = b.solve_exact(k, &opts).unwrap();
            let SolveOutcome::Ppm(sol) = via_request else {
                panic!("expected a PPM outcome");
            };
            assert_eq!(sol.device_count(), via_shim.device_count(), "k = {k}");
        }
    }

    #[test]
    fn validation_rejects_bad_requests() {
        for (req, field) in [
            (SolveRequest::ppm(1.5), "k"),
            (SolveRequest::ppm(f64::NAN), "k"),
            (SolveRequest::ppm(0.5).with_node_budget(0), "node_budget"),
            (SolveRequest::budget(2).greedy(), "device_budget"),
            (
                {
                    let mut r = SolveRequest::apm();
                    r.device_budget = Some(1);
                    r
                },
                "device_budget",
            ),
        ] {
            assert_eq!(req.validate().unwrap_err().field, field, "{req:?}");
        }
        let inst = figure3();
        assert_eq!(
            solve_instance(&inst, &SolveRequest::apm())
                .unwrap_err()
                .field,
            "objective"
        );
    }

    #[test]
    fn exact_options_round_trip() {
        let opts = ExactOptions {
            max_nodes: 123,
            time_limit: Some(Duration::from_millis(7)),
            warm_start: false,
            rel_gap: 0.25,
            work_budget: Some(4_096),
        };
        let req = SolveRequest::ppm(0.5).with_exact_options(&opts);
        let back = req.exact_options();
        assert_eq!(back.max_nodes, opts.max_nodes);
        assert_eq!(back.time_limit, opts.time_limit);
        assert_eq!(back.warm_start, opts.warm_start);
        assert_eq!(back.rel_gap, opts.rel_gap);
        assert_eq!(back.work_budget, opts.work_budget);
        assert_eq!(
            SolveRequest::ppm(0.5).with_work_budget(64).work_budget,
            Some(64)
        );
    }

    #[test]
    fn apm_solves_on_a_small_graph() {
        use netgraph::GraphBuilder;
        let mut b = GraphBuilder::new();
        let nodes = b.add_nodes("r", 4);
        b.add_edge(nodes[0], nodes[1], 1.0);
        b.add_edge(nodes[1], nodes[2], 1.0);
        b.add_edge(nodes[2], nodes[3], 1.0);
        let graph = b.build();
        for req in [SolveRequest::apm(), SolveRequest::apm().greedy()] {
            let SolveOutcome::Apm(sol) = solve_apm(&graph, &req).unwrap() else {
                panic!("expected an APM outcome");
            };
            assert!(!sol.beacons.is_empty());
            assert_eq!(sol.router_links, 3);
        }
        assert_eq!(
            solve_apm(&graph, &SolveRequest::ppm(0.5))
                .unwrap_err()
                .field,
            "objective"
        );
    }
}
