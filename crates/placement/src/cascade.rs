//! Cascade sampling — the paper's first future-work item (Section 7):
//! *"the model of sampling capable devices has to be refined in order to
//! get a tighter bound on the actual monitoring ratio achieved by several
//! measurement points on one path."*
//!
//! Linear Program 3 assumes rates on a path **add** (`δ_p ≤ Σ r_e`), the
//! packet-marking reading of Section 5.2 where devices coordinate to sample
//! disjoint packet sets. Without marking, devices sample independently and
//! a packet is captured with probability `1 − Π_{e ∈ p}(1 − r_e)` — strictly
//! less than the additive bound whenever two devices overlap. This module
//! provides the refined model:
//!
//! * [`independent_ratio`] — the exact non-linear monitored ratio;
//! * [`check_cascade_solution`] — validator under the independent
//!   semantics;
//! * [`solve_ppme_cascade`] — a solver for `PPME` under independent
//!   sampling, via a provably *safe linearization*: since
//!   `1 − Π(1−r_e) ≥ 1 − exp(−Σ r_e) ≥ (1 − 1/e)·min(1, Σ r_e)`, solving
//!   LP 3 with the coverage targets inflated by `1/(1 − 1/e)` (capped at
//!   feasibility) yields rates whose *independent* ratio meets the original
//!   targets; a final per-edge descent pass then shrinks rates greedily
//!   while the non-linear constraints keep holding, recovering most of the
//!   over-provisioning.
//!
//! The `xp_cascade` experiment quantifies the price of not marking packets:
//! how much extra exploitation cost independent sampling needs versus the
//! additive model at equal coverage.

use crate::sampling::{PpmeOptions, PpmeSolution, SamplingProblem};

/// Exact monitored ratio of one path under independent sampling:
/// `1 − Π_{e ∈ p}(1 − r_e)`.
pub fn independent_ratio(edges: &[usize], rates: &[f64]) -> f64 {
    let miss: f64 = edges
        .iter()
        .map(|&e| (1.0 - rates[e]).clamp(0.0, 1.0))
        .product();
    1.0 - miss
}

/// Total monitored volume under independent sampling.
pub fn independent_monitored(prob: &SamplingProblem, rates: &[f64]) -> f64 {
    prob.paths
        .iter()
        .map(|p| p.volume * independent_ratio(&p.edges, rates))
        .sum()
}

/// Validates `(installed, rates)` under the independent-sampling semantics
/// (devices required where rates are positive, per-traffic floors, global
/// target).
pub fn check_cascade_solution(
    prob: &SamplingProblem,
    installed: &[bool],
    rates: &[f64],
    tol: f64,
) -> Result<(), String> {
    if installed.len() != prob.num_edges || rates.len() != prob.num_edges {
        return Err("wrong arity".into());
    }
    for e in 0..prob.num_edges {
        if rates[e] < -tol || rates[e] > 1.0 + tol {
            return Err(format!("rate r_{e} = {} outside [0, 1]", rates[e]));
        }
        if rates[e] > tol && !installed[e] {
            return Err(format!("sampling on link {e} without a device"));
        }
    }
    for t in 0..prob.num_traffics {
        let vt = prob.traffic_volume(t);
        if vt <= 0.0 || prob.h[t] <= 0.0 {
            continue;
        }
        let mt: f64 = prob
            .paths
            .iter()
            .filter(|p| p.traffic == t)
            .map(|p| p.volume * independent_ratio(&p.edges, rates))
            .sum();
        if mt + tol * vt.max(1.0) < prob.h[t] * vt {
            return Err(format!("traffic {t}: independent ratio misses the floor"));
        }
    }
    let total = prob.total_volume();
    let covered = independent_monitored(prob, rates);
    if covered + tol * total.max(1.0) < prob.k * total {
        return Err(format!(
            "global independent coverage {covered} < k·V = {}",
            prob.k * total
        ));
    }
    Ok(())
}

/// Result of the cascade solver, with both semantics evaluated.
#[derive(Debug, Clone)]
pub struct CascadeSolution {
    /// The underlying (inflated-target) LP 3 solution.
    pub base: PpmeSolution,
    /// Final rates after the shrink pass.
    pub rates: Vec<f64>,
    /// Exploitation cost of the final rates.
    pub exploit_cost: f64,
    /// Monitored volume under independent sampling with the final rates.
    pub monitored_independent: f64,
    /// Monitored volume the additive model would report for the same rates
    /// (always ≥ the independent figure — Section 5.2's optimism).
    pub monitored_additive: f64,
}

impl CascadeSolution {
    /// Total cost (setup of the installed devices + final exploitation).
    pub fn total_cost(&self) -> f64 {
        self.base.setup_cost + self.exploit_cost
    }
}

/// Solves `PPME(h, k)` under independent (non-coordinated) sampling.
///
/// Returns `None` when even the inflated linear program is infeasible, or
/// when post-validation under the true semantics fails (which the safe
/// inflation prevents in all but degenerate edge cases — the validator
/// result is checked before returning).
pub fn solve_ppme_cascade(prob: &SamplingProblem, opts: &PpmeOptions) -> Option<CascadeSolution> {
    // Fast path: when the additive optimum's rates do not overlap on any
    // path, the two semantics coincide and the additive solution is
    // already valid (and optimal — independent coverage never exceeds
    // additive, so no cheaper solution can exist).
    if let Some(additive) = crate::sampling::solve_ppme(prob, opts) {
        if check_cascade_solution(prob, &additive.installed, &additive.rates, 1e-9).is_ok() {
            let exploit_cost = additive.exploit_cost;
            let monitored_independent = independent_monitored(prob, &additive.rates);
            let monitored_additive = prob.total_monitored(&additive.rates);
            let rates = additive.rates.clone();
            return Some(CascadeSolution {
                base: additive,
                rates,
                exploit_cost,
                monitored_independent,
                monitored_additive,
            });
        }
    }

    // Inflation factor 1/(1 - 1/e): additive coverage c guarantees
    // independent coverage ≥ (1 - 1/e)·c, so targets scaled by the inverse
    // are safe. Cap at the maximum reachable ratio 1.
    let inflate = 1.0 / (1.0 - std::f64::consts::E.powi(-1).min(1.0));
    debug_assert!(inflate > 1.58 && inflate < 1.59);
    let mut inflated = prob.clone();
    inflated.k = (prob.k * inflate).min(1.0);
    for h in &mut inflated.h {
        *h = (*h * inflate).min(1.0);
    }

    let base = crate::sampling::solve_ppme(&inflated, opts)?;

    // Shrink pass: repeatedly reduce the rate of the most expensive device
    // while the independent semantics still satisfies every constraint.
    let mut rates = base.rates.clone();
    let step = 0.05f64;
    let mut improved = true;
    while improved {
        improved = false;
        // Try edges in decreasing exploitation-cost-of-current-rate order.
        let mut order: Vec<usize> = (0..prob.num_edges).filter(|&e| rates[e] > 0.0).collect();
        order.sort_by(|&a, &b| {
            (rates[b] * prob.exploit_cost[b])
                .partial_cmp(&(rates[a] * prob.exploit_cost[a]))
                .expect("finite")
        });
        for e in order {
            let old = rates[e];
            let candidate = (old - step).max(0.0);
            rates[e] = candidate;
            if check_cascade_solution(prob, &base.installed, &rates, 1e-9).is_ok() {
                improved = true;
            } else {
                rates[e] = old;
            }
        }
    }

    if check_cascade_solution(prob, &base.installed, &rates, 1e-6).is_err() {
        return None; // degenerate: inflation hit the k = 1 cap and failed
    }

    let exploit_cost = rates
        .iter()
        .zip(&prob.exploit_cost)
        .map(|(r, c)| r * c)
        .sum();
    let monitored_independent = independent_monitored(prob, &rates);
    let monitored_additive = prob.total_monitored(&rates);
    Some(CascadeSolution {
        base,
        rates,
        exploit_cost,
        monitored_independent,
        monitored_additive,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampling::SamplingPath;

    fn prob(k: f64) -> SamplingProblem {
        SamplingProblem {
            num_edges: 5,
            paths: vec![
                SamplingPath {
                    edges: vec![0, 1],
                    volume: 2.0,
                    traffic: 0,
                },
                SamplingPath {
                    edges: vec![0, 2],
                    volume: 2.0,
                    traffic: 1,
                },
                SamplingPath {
                    edges: vec![1, 3],
                    volume: 1.0,
                    traffic: 2,
                },
                SamplingPath {
                    edges: vec![2, 4],
                    volume: 1.0,
                    traffic: 3,
                },
            ],
            num_traffics: 4,
            h: vec![0.0; 4],
            k,
            setup_cost: vec![1.0; 5],
            exploit_cost: vec![0.5; 5],
        }
    }

    #[test]
    fn independent_ratio_basics() {
        let rates = vec![0.5, 0.5, 0.0];
        // Two devices at 0.5: 1 - 0.25 = 0.75 < 1.0 (the additive bound).
        assert!((independent_ratio(&[0, 1], &rates) - 0.75).abs() < 1e-12);
        // Single device: exact.
        assert!((independent_ratio(&[0], &rates) - 0.5).abs() < 1e-12);
        // No devices: zero.
        assert_eq!(independent_ratio(&[2], &rates), 0.0);
        // Rate 1 anywhere: full capture.
        assert_eq!(independent_ratio(&[0, 1], &[1.0, 0.3, 0.0]), 1.0);
    }

    #[test]
    fn independent_never_exceeds_additive() {
        let p = prob(0.8);
        let rates = vec![0.3, 0.6, 0.2, 0.9, 0.0];
        let ind = independent_monitored(&p, &rates);
        let add = p.total_monitored(&rates);
        assert!(ind <= add + 1e-12, "independent {ind} > additive {add}");
    }

    #[test]
    fn cascade_solution_meets_target_under_true_semantics() {
        let p = prob(0.7);
        let s = solve_ppme_cascade(&p, &PpmeOptions::default()).expect("feasible");
        check_cascade_solution(&p, &s.base.installed, &s.rates, 1e-6).unwrap();
        assert!(s.monitored_independent + 1e-6 >= 0.7 * p.total_volume());
        assert!(s.monitored_additive + 1e-9 >= s.monitored_independent);
    }

    #[test]
    fn cascade_costs_at_least_the_additive_model() {
        // At equal coverage the non-coordinated devices cannot be cheaper.
        let p = prob(0.7);
        let additive = crate::sampling::solve_ppme(&p, &PpmeOptions::default()).unwrap();
        let cascade = solve_ppme_cascade(&p, &PpmeOptions::default()).unwrap();
        assert!(
            cascade.total_cost() + 1e-6 >= additive.total_cost(),
            "cascade {} vs additive {}",
            cascade.total_cost(),
            additive.total_cost()
        );
    }

    #[test]
    fn shrink_pass_reduces_overprovisioning() {
        let p = prob(0.6);
        let s = solve_ppme_cascade(&p, &PpmeOptions::default()).unwrap();
        // The final exploitation cost is no worse than the inflated LP's.
        assert!(s.exploit_cost <= s.base.exploit_cost + 1e-9);
    }

    #[test]
    fn full_target_may_be_infeasible_to_inflate() {
        // k = 1 with rates capped at 1: independent sampling with a single
        // device at rate 1 still captures everything, so this stays
        // feasible; the solver must handle the capped inflation.
        let p = prob(1.0);
        let s = solve_ppme_cascade(&p, &PpmeOptions::default()).expect("rate-1 devices suffice");
        assert!(s.monitored_independent + 1e-6 >= p.total_volume());
    }
}
