//! Theorem 1: the Passive Monitoring problem for `k = 1` is equivalent to
//! Minimum Set Cover — both reduction directions, constructed explicitly.
//!
//! These constructions matter beyond the proof: `msc_to_ppm` generates
//! structured hard instances for the solvers (the NP-hardness gadget), and
//! `ppm_to_msc` is how the placement code hands `PPM(1)` to the set-cover
//! kernel. Property tests round-trip optima through both directions.

use netgraph::{Graph, GraphBuilder, NodeId, Path};

use crate::instance::PpmInstance;
use crate::setcover::SetCoverInstance;

/// Output of the MSC → PPM(1) construction.
#[derive(Debug)]
pub struct MscToPpm {
    /// The gadget graph (2·|C| vertices as in the proof).
    pub graph: Graph,
    /// One unit-volume traffic per MSC element, routed through the edges of
    /// the sets containing it.
    pub instance: PpmInstance,
    /// `set_edge[i]` is the index of the edge `e_i` standing for set `c_i`.
    pub set_edge: Vec<usize>,
    /// The actual traffic paths (for inspection/validation).
    pub paths: Vec<Path>,
}

/// Builds the monitoring instance of Theorem 1 from an MSC instance.
///
/// Construction (paper Section 4.2): one edge `e_i` per set `c_i`; whenever
/// `c_i ∩ c_j ≠ ∅` two *linking* edges `e_{ij}`, `e_{ji}` complete a cycle
/// through `e_i` and `e_j`; each element `u` becomes a traffic whose path
/// visits `e_j` for every set `c_j ∋ u`, chained through linking edges.
///
/// # Panics
///
/// Panics when an element belongs to no set (its traffic would have an
/// empty path, and the MSC instance itself has no cover).
pub fn msc_to_ppm(msc: &SetCoverInstance) -> MscToPpm {
    let m = msc.sets.len();
    let mut b = GraphBuilder::new();

    // Edge e_i spans a dedicated vertex pair (a_i, z_i): 2|C| vertices.
    let mut a = Vec::with_capacity(m);
    let mut z = Vec::with_capacity(m);
    for i in 0..m {
        a.push(b.add_node(format!("a{i}")));
        z.push(b.add_node(format!("z{i}")));
    }
    let set_edge: Vec<usize> = (0..m)
        .map(|i| b.add_edge(a[i], z[i], 1.0).index())
        .collect();

    // Linking edges for every intersecting pair: e_ij joins z_i to a_j and
    // e_ji joins z_j to a_i, so e_i, e_ij, e_j, e_ji form a cycle.
    // link[(i, j)] = edge z_i - a_j.
    let mut link = std::collections::HashMap::new();
    for i in 0..m {
        for j in i + 1..m {
            let intersects = msc.sets[i].iter().any(|e| msc.sets[j].contains(e));
            if intersects {
                let eij = b.add_edge(z[i], a[j], 1.0).index();
                let eji = b.add_edge(z[j], a[i], 1.0).index();
                link.insert((i, j), eij);
                link.insert((j, i), eji);
            }
        }
    }

    let graph = b.build();

    // One traffic per element: chain through the sets containing it, in
    // index order, using linking edges between consecutive sets.
    let mut traffics = Vec::with_capacity(msc.weights.len());
    let mut paths = Vec::with_capacity(msc.weights.len());
    for (u, &w) in msc.weights.iter().enumerate() {
        let containing: Vec<usize> = (0..m).filter(|&i| msc.sets[i].contains(&u)).collect();
        assert!(
            !containing.is_empty(),
            "element {u} belongs to no set; the MSC instance has no cover"
        );
        let mut nodes: Vec<NodeId> = Vec::new();
        let mut support = Vec::new();
        for (pos, &i) in containing.iter().enumerate() {
            if pos == 0 {
                nodes.push(a[i]);
            }
            nodes.push(z[i]);
            support.push(set_edge[i]);
            if let Some(&next) = containing.get(pos + 1) {
                let eij = link[&(i, next)];
                nodes.push(a[next]);
                support.push(eij);
            }
        }
        let path = Path::from_nodes(&graph, nodes).expect("construction yields valid paths");
        debug_assert_eq!(
            path.edges().iter().map(|e| e.index()).collect::<Vec<_>>(),
            support
        );
        paths.push(path);
        traffics.push((if w > 0.0 { w } else { 1.0 }, support));
    }

    let instance = PpmInstance::new(graph.edge_count(), traffics);
    MscToPpm {
        graph,
        instance,
        set_edge,
        paths,
    }
}

/// Interprets a `PPM(1)` solution of the gadget as an MSC solution, using
/// the replacement argument of the proof: a selected linking edge `e_{ij}`
/// is replaced by `e_i` (either endpoint set works).
pub fn ppm_solution_to_msc(gadget: &MscToPpm, selected_edges: &[usize]) -> Vec<usize> {
    let m = gadget.set_edge.len();
    let mut chosen = vec![false; m];
    for &e in selected_edges {
        if let Some(i) = gadget.set_edge.iter().position(|&se| se == e) {
            chosen[i] = true;
        } else {
            // Linking edge: find a traffic using it and take the preceding
            // set edge on that path (the proof's replacement step).
            'outer: for (_, support) in &gadget.instance.traffics {
                if let Some(pos) = support.iter().position(|&se| se == e) {
                    // Supports alternate set-edge / link-edge, starting with
                    // a set edge, so a neighbor is always a set edge.
                    let neighbor = if pos > 0 {
                        support[pos - 1]
                    } else {
                        support[pos + 1]
                    };
                    let i = gadget
                        .set_edge
                        .iter()
                        .position(|&se| se == neighbor)
                        .expect("neighbor of a link edge is a set edge");
                    chosen[i] = true;
                    break 'outer;
                }
            }
        }
    }
    (0..m).filter(|&i| chosen[i]).collect()
}

/// The reverse direction of Theorem 1: any monitoring instance becomes an
/// MSC instance with `S = D` (elements = traffics) and one candidate set
/// per edge (`π_e` = traffics crossing `e`).
pub fn ppm_to_msc(inst: &PpmInstance) -> SetCoverInstance {
    let mut sets = vec![Vec::new(); inst.num_edges];
    for (t, (_, support)) in inst.traffics.iter().enumerate() {
        for &e in support {
            sets[e].push(t);
        }
    }
    let weights = inst.traffics.iter().map(|&(v, _)| v).collect();
    SetCoverInstance::new(weights, sets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setcover::{brute_force_cover, greedy_set_cover};

    fn triangle_msc() -> SetCoverInstance {
        SetCoverInstance::unweighted(3, vec![vec![0, 1], vec![1, 2], vec![0, 2]])
    }

    #[test]
    fn gadget_has_expected_shape() {
        let msc = triangle_msc();
        let g = msc_to_ppm(&msc);
        // 3 sets -> 6 vertices; all pairs intersect -> 3 set edges + 6 links.
        assert_eq!(g.graph.node_count(), 6);
        assert_eq!(g.graph.edge_count(), 3 + 6);
        assert_eq!(g.instance.traffics.len(), 3);
        for p in &g.paths {
            assert!(p.is_simple());
        }
    }

    #[test]
    fn traffic_supports_match_membership() {
        let msc = triangle_msc();
        let g = msc_to_ppm(&msc);
        // Element 0 is in sets 0 and 2: its support contains e_0 and e_2.
        let support = &g.instance.traffics[0].1;
        assert!(support.contains(&g.set_edge[0]));
        assert!(support.contains(&g.set_edge[2]));
        assert!(!support.contains(&g.set_edge[1]));
    }

    #[test]
    fn optima_transfer_between_problems() {
        let msc = triangle_msc();
        let g = msc_to_ppm(&msc);
        // Optimal MSC = 2. Selecting those two set edges covers all
        // traffics, so PPM(1) optimum <= 2 — and cannot be 1 because no
        // single edge covers all three traffics.
        let opt_msc = brute_force_cover(&msc, 3.0).unwrap();
        assert_eq!(opt_msc.len(), 2);
        let chosen: Vec<usize> = opt_msc.iter().map(|&i| g.set_edge[i]).collect();
        assert!(g.instance.is_feasible(&chosen, 1.0));
        for e in 0..g.instance.num_edges {
            assert!(
                !g.instance.is_feasible(&[e], 1.0),
                "no single edge covers all"
            );
        }
    }

    #[test]
    fn link_edge_selection_maps_back() {
        let msc = triangle_msc();
        let g = msc_to_ppm(&msc);
        // Pick a linking edge (any non-set edge) and a set edge; mapping
        // back must produce a valid set selection of size <= 2.
        let link_edge = (0..g.instance.num_edges)
            .find(|e| !g.set_edge.contains(e))
            .expect("links exist");
        let back = ppm_solution_to_msc(&g, &[link_edge, g.set_edge[1]]);
        assert!(!back.is_empty() && back.len() <= 2);
        for &s in &back {
            assert!(s < msc.sets.len());
        }
    }

    #[test]
    fn reverse_reduction_preserves_greedy_cover() {
        let inst = crate::instance::fixture_figure3();
        let msc = ppm_to_msc(&inst);
        assert_eq!(msc.sets.len(), inst.num_edges);
        assert_eq!(msc.total_weight(), inst.total_volume());
        let g = greedy_set_cover(&msc).unwrap();
        // The greedy MSC solution is a feasible PPM(1) solution.
        assert!(inst.is_feasible(&g.selection, 1.0));
    }

    #[test]
    fn disjoint_sets_have_no_links() {
        let msc = SetCoverInstance::unweighted(2, vec![vec![0], vec![1]]);
        let g = msc_to_ppm(&msc);
        assert_eq!(g.graph.edge_count(), 2); // set edges only
    }

    #[test]
    #[should_panic(expected = "belongs to no set")]
    fn uncoverable_element_panics() {
        let msc = SetCoverInstance::unweighted(2, vec![vec![0]]);
        msc_to_ppm(&msc);
    }

    #[test]
    fn weighted_elements_carry_volumes() {
        let msc = SetCoverInstance::new(vec![5.0, 2.0], vec![vec![0, 1]]);
        let g = msc_to_ppm(&msc);
        assert_eq!(g.instance.total_volume(), 7.0);
    }
}
