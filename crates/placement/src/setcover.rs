//! Minimum (Partial) Set Cover: the combinatorial kernel of Section 4.2.
//!
//! The paper proves `PPM(1) ≡ MSC` (Theorem 1) and leans on two classical
//! results: the greedy algorithm is a `(ln n − ln ln n + O(1))`
//! approximation (Slavík), and no polynomial algorithm does better than
//! `(1 − ε) ln n` unless NP ⊂ DTIME(n^{log log n}) (Feige). This module
//! implements the weighted-element *partial* cover greedy — covering at
//! least a target weight of elements with the fewest sets — which
//! specializes to plain MSC at target = total weight.

/// A (partial, weighted-element) set cover instance.
#[derive(Debug, Clone)]
pub struct SetCoverInstance {
    /// Weight per element (paper: traffic volumes; classical MSC: all 1).
    pub weights: Vec<f64>,
    /// The candidate sets, as duplicate-free element index lists.
    pub sets: Vec<Vec<usize>>,
}

impl SetCoverInstance {
    /// Builds and validates an instance.
    ///
    /// # Panics
    ///
    /// Panics when a set references an element out of range or a weight is
    /// negative/NaN.
    pub fn new(weights: Vec<f64>, sets: Vec<Vec<usize>>) -> Self {
        for &w in &weights {
            assert!(w.is_finite() && w >= 0.0, "weights must be finite and >= 0");
        }
        let n = weights.len();
        let mut cleaned = Vec::with_capacity(sets.len());
        for mut s in sets {
            s.sort_unstable();
            s.dedup();
            if let Some(&max) = s.last() {
                assert!(max < n, "set references element {max} >= {n}");
            }
            cleaned.push(s);
        }
        Self {
            weights,
            sets: cleaned,
        }
    }

    /// Unweighted instance (all element weights 1).
    pub fn unweighted(num_elements: usize, sets: Vec<Vec<usize>>) -> Self {
        Self::new(vec![1.0; num_elements], sets)
    }

    /// Total element weight.
    pub fn total_weight(&self) -> f64 {
        self.weights.iter().sum()
    }

    /// Weight covered by a selection of set indices.
    pub fn covered_weight(&self, selection: &[usize]) -> f64 {
        let mut covered = vec![false; self.weights.len()];
        for &s in selection {
            for &e in &self.sets[s] {
                covered[e] = true;
            }
        }
        covered
            .iter()
            .zip(&self.weights)
            .filter(|(c, _)| **c)
            .map(|(_, w)| w)
            .sum()
    }

    /// The maximum weight any selection can cover (elements in no set are
    /// uncoverable).
    pub fn max_coverable_weight(&self) -> f64 {
        let mut coverable = vec![false; self.weights.len()];
        for s in &self.sets {
            for &e in s {
                coverable[e] = true;
            }
        }
        coverable
            .iter()
            .zip(&self.weights)
            .filter(|(c, _)| **c)
            .map(|(_, w)| w)
            .sum()
    }
}

/// Result of the greedy partial cover.
#[derive(Debug, Clone)]
pub struct GreedyCover {
    /// Selected set indices, in pick order.
    pub selection: Vec<usize>,
    /// Weight covered by the selection.
    pub covered: f64,
}

/// Greedy partial cover: repeatedly pick the set covering the most
/// still-uncovered weight until `target` weight is covered.
///
/// Returns `None` when the target exceeds the coverable weight. Ties break
/// on the smaller set index, so the output is deterministic.
pub fn greedy_partial_cover(inst: &SetCoverInstance, target: f64) -> Option<GreedyCover> {
    let n = inst.weights.len();
    let mut covered = vec![false; n];
    let mut covered_w = 0.0f64;
    let mut selection = Vec::new();
    let tol = 1e-9 * inst.total_weight().max(1.0);

    if target > inst.max_coverable_weight() + tol {
        return None;
    }

    let mut used = vec![false; inst.sets.len()];
    while covered_w + tol < target {
        let mut best: Option<(usize, f64)> = None;
        for (i, s) in inst.sets.iter().enumerate() {
            if used[i] {
                continue;
            }
            let gain: f64 = s
                .iter()
                .filter(|&&e| !covered[e])
                .map(|&e| inst.weights[e])
                .sum();
            if gain > tol && best.is_none_or(|(_, g)| gain > g + tol) {
                best = Some((i, gain));
            }
        }
        let (pick, gain) = best?; // None only on numeric pathologies
        used[pick] = true;
        selection.push(pick);
        covered_w += gain;
        for &e in &inst.sets[pick] {
            covered[e] = true;
        }
    }

    Some(GreedyCover {
        selection,
        covered: covered_w,
    })
}

/// Full-cover convenience wrapper (`MSC`): greedy until everything
/// coverable is covered; `None` if some positive-weight element is in no
/// set.
pub fn greedy_set_cover(inst: &SetCoverInstance) -> Option<GreedyCover> {
    let total = inst.total_weight();
    if inst.max_coverable_weight() + 1e-12 < total {
        return None;
    }
    greedy_partial_cover(inst, total)
}

/// The Slavík guarantee for greedy set cover on `n` elements:
/// `ln n − ln ln n + 0.78`; greedy never uses more than this factor times
/// the optimum (for n large enough; the constant is Slavík's).
pub fn slavik_bound(num_elements: usize) -> f64 {
    if num_elements < 2 {
        return 1.0;
    }
    let n = num_elements as f64;
    (n.ln() - n.ln().ln() + 0.78).max(1.0)
}

/// Exhaustive minimum partial cover for small instances (tests and bound
/// checking): the smallest selection covering at least `target` weight,
/// ties broken toward the lexicographically smallest bitmask.
///
/// Returns `None` when no selection reaches the target. Exponential:
/// callers must keep `sets.len() ≤ 20`.
pub fn brute_force_cover(inst: &SetCoverInstance, target: f64) -> Option<Vec<usize>> {
    let m = inst.sets.len();
    assert!(m <= 20, "brute force limited to 20 sets, got {m}");
    let tol = 1e-9 * inst.total_weight().max(1.0);
    let mut best: Option<(u32, u32)> = None; // (cardinality, mask)
    for mask in 0u32..(1u32 << m) {
        let count = mask.count_ones();
        if best.is_some_and(|(c, _)| count >= c) {
            continue;
        }
        let selection: Vec<usize> = (0..m).filter(|i| mask >> i & 1 == 1).collect();
        if inst.covered_weight(&selection) + tol >= target {
            best = Some((count, mask));
            if count == 0 {
                break;
            }
        }
    }
    best.map(|(_, mask)| (0..m).filter(|i| mask >> i & 1 == 1).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> SetCoverInstance {
        // Elements {0,1,2}; sets {0,1}, {1,2}, {0,2}: optimum 2, LP 1.5.
        SetCoverInstance::unweighted(3, vec![vec![0, 1], vec![1, 2], vec![0, 2]])
    }

    #[test]
    fn greedy_covers_triangle_with_two() {
        let inst = triangle();
        let g = greedy_set_cover(&inst).unwrap();
        assert_eq!(g.selection.len(), 2);
        assert_eq!(g.covered, 3.0);
    }

    #[test]
    fn brute_force_triangle() {
        let inst = triangle();
        let b = brute_force_cover(&inst, 3.0).unwrap();
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn partial_cover_needs_fewer_sets() {
        let inst = triangle();
        let g = greedy_partial_cover(&inst, 2.0).unwrap();
        assert_eq!(g.selection.len(), 1);
        assert!(g.covered >= 2.0);
    }

    #[test]
    fn weighted_greedy_prefers_heavy_elements() {
        let inst = SetCoverInstance::new(vec![10.0, 1.0, 1.0], vec![vec![0], vec![1, 2]]);
        let g = greedy_partial_cover(&inst, 10.0).unwrap();
        assert_eq!(g.selection, vec![0]);
    }

    #[test]
    fn impossible_cover_detected() {
        // Element 2 in no set.
        let inst = SetCoverInstance::unweighted(3, vec![vec![0], vec![1]]);
        assert!(greedy_set_cover(&inst).is_none());
        assert!(greedy_partial_cover(&inst, 3.0).is_none());
        assert!(greedy_partial_cover(&inst, 2.0).is_some());
    }

    #[test]
    fn zero_target_selects_nothing() {
        let inst = triangle();
        let g = greedy_partial_cover(&inst, 0.0).unwrap();
        assert!(g.selection.is_empty());
    }

    #[test]
    fn greedy_is_worse_than_optimal_on_classic_family() {
        // Classic greedy trap on 6 elements: the optimal cover is
        // A = {0,1,4} with B = {2,3,5}, but the bait set X = {0,1,2,3}
        // is bigger than either, so greedy picks X first and then still
        // needs A and B (one new element each): 3 sets vs optimum 2.
        let inst = SetCoverInstance::unweighted(
            6,
            vec![
                vec![0, 1, 2, 3], // bait
                vec![0, 1, 4],    // optimal half
                vec![2, 3, 5],    // optimal half
            ],
        );
        let g = greedy_set_cover(&inst).unwrap();
        let b = brute_force_cover(&inst, 6.0).unwrap();
        assert_eq!(b.len(), 2);
        assert!(
            g.selection.len() >= 3,
            "greedy should be baited: {:?}",
            g.selection
        );
        // ... but within the Slavík bound.
        assert!((g.selection.len() as f64) <= slavik_bound(6) * b.len() as f64);
    }

    #[test]
    fn slavik_bound_sane() {
        assert_eq!(slavik_bound(1), 1.0);
        assert!(slavik_bound(100) > 1.0);
        assert!(slavik_bound(1000) > slavik_bound(100));
        // ln(1000) - ln ln(1000) + 0.78 ≈ 5.75
        assert!((slavik_bound(1000) - 5.755).abs() < 0.1);
    }

    #[test]
    fn brute_force_partial_target() {
        let inst = SetCoverInstance::new(
            vec![5.0, 4.0, 3.0, 2.0],
            vec![vec![0], vec![1], vec![2], vec![3], vec![2, 3]],
        );
        // Cover >= 9 weight: {0,1} does it with 2 sets; single best set is 5.
        let b = brute_force_cover(&inst, 9.0).unwrap();
        assert_eq!(b.len(), 2);
        let b2 = brute_force_cover(&inst, 5.0).unwrap();
        assert_eq!(b2.len(), 1);
        assert!(brute_force_cover(&inst, 15.0).is_none());
    }

    #[test]
    fn empty_instance() {
        let inst = SetCoverInstance::unweighted(0, vec![]);
        let g = greedy_set_cover(&inst).unwrap();
        assert!(g.selection.is_empty());
        assert_eq!(brute_force_cover(&inst, 0.0), Some(vec![]));
    }
}
