//! `PPME(h, k)` — passive monitoring with packet sampling (paper Section
//! 5, Linear Program 3).
//!
//! Devices now carry a **setup cost** `cost_i(e)` and an **exploitation
//! cost** `cost_e(e)·r_e` proportional to the sampling ratio `r_e ∈ [0, 1]`
//! assigned to the device on link `e`. Traffics may be multi-routed (a set
//! of weighted paths between the same endpoints, Section 5's load-balanced
//! setting), each traffic `t` has a minimum monitoring ratio `h_t ≤ k`, and
//! the global ratio `k` must still be met:
//!
//! ```text
//! minimize    Σ_e cost_i(e)·x_e + cost_e(e)·r_e
//! subject to  Σ_{e ∈ p} r_e ≥ δ_p                    ∀ p ∈ P
//!             x_e ≥ r_e                               ∀ e ∈ E
//!             Σ_{p ∈ P_t} δ_p·v_p ≥ h_t·Σ_{p ∈ P_t} v_p   ∀ t
//!             Σ_{p ∈ P} δ_p·v_p ≥ k·Σ_{p ∈ P} v_p
//!             δ_p, r_e ∈ [0, 1],  x_e ∈ {0, 1}
//! ```
//!
//! The model of \[22\] is a mixed *non-linear* program; the paper stresses
//! that this MILP form solves much faster. Cascaded devices on one path
//! accumulate their rates additively (the packet-marking reading discussed
//! in Section 5.2).

use milp::{Cmp, MipOptions, Model, Sense, SolveStatus, VarId, VarKind};
use netgraph::Graph;
use popgen::{MultiTraffic, TrafficSet};

/// One routed path of a (possibly multi-routed) traffic.
#[derive(Debug, Clone)]
pub struct SamplingPath {
    /// Edge indices this path traverses (duplicate-free).
    pub edges: Vec<usize>,
    /// Volume carried by this path (`v_p`).
    pub volume: f64,
    /// Index of the traffic this path belongs to.
    pub traffic: usize,
}

/// A `PPME(h, k)` problem instance.
#[derive(Debug, Clone)]
pub struct SamplingProblem {
    /// Number of candidate links.
    pub num_edges: usize,
    /// All paths `P = ∪_t P_t`.
    pub paths: Vec<SamplingPath>,
    /// Number of traffics (`max(traffic) + 1`).
    pub num_traffics: usize,
    /// Per-traffic minimum monitoring ratio `h_t` (must satisfy `h_t ≤ k`).
    pub h: Vec<f64>,
    /// Global monitoring ratio `k`.
    pub k: f64,
    /// Setup cost `cost_i(e)` per link.
    pub setup_cost: Vec<f64>,
    /// Exploitation cost `cost_e(e)` per link (per unit of sampling ratio).
    pub exploit_cost: Vec<f64>,
}

impl SamplingProblem {
    /// Builds a problem from multi-routed traffics with uniform `h` and
    /// explicit costs.
    ///
    /// # Panics
    ///
    /// Panics when cost vectors have the wrong length, `k ∉ [0, 1]`, or
    /// `h > k` (the paper requires `h_t ≤ k`).
    pub fn from_multi(
        graph: &Graph,
        traffics: &[MultiTraffic],
        h: f64,
        k: f64,
        setup_cost: Vec<f64>,
        exploit_cost: Vec<f64>,
    ) -> Self {
        assert!((0.0..=1.0).contains(&k), "k must lie in [0, 1], got {k}");
        assert!((0.0..=1.0).contains(&h), "h must lie in [0, 1], got {h}");
        assert!(h <= k + 1e-12, "h_t must not exceed k (paper Section 5)");
        assert_eq!(
            setup_cost.len(),
            graph.edge_count(),
            "one setup cost per link"
        );
        assert_eq!(
            exploit_cost.len(),
            graph.edge_count(),
            "one exploitation cost per link"
        );
        let mut paths = Vec::new();
        for (t, mt) in traffics.iter().enumerate() {
            for (path, share) in &mt.routes {
                paths.push(SamplingPath {
                    edges: path.edges().iter().map(|e| e.index()).collect(),
                    volume: mt.volume * share,
                    traffic: t,
                });
            }
        }
        Self {
            num_edges: graph.edge_count(),
            paths,
            num_traffics: traffics.len(),
            h: vec![h; traffics.len()],
            k,
            setup_cost,
            exploit_cost,
        }
    }

    /// Builds a single-path problem from a routed [`TrafficSet`] (each
    /// traffic is its own path), as used by the dynamic controller.
    pub fn from_traffic_set(
        graph: &Graph,
        ts: &TrafficSet,
        h: f64,
        k: f64,
        setup_cost: Vec<f64>,
        exploit_cost: Vec<f64>,
    ) -> Self {
        assert!(h <= k + 1e-12, "h_t must not exceed k (paper Section 5)");
        assert_eq!(setup_cost.len(), graph.edge_count());
        assert_eq!(exploit_cost.len(), graph.edge_count());
        let paths = ts
            .traffics
            .iter()
            .enumerate()
            .map(|(t, tr)| SamplingPath {
                edges: tr.path.edges().iter().map(|e| e.index()).collect(),
                volume: tr.volume,
                traffic: t,
            })
            .collect();
        Self {
            num_edges: graph.edge_count(),
            paths,
            num_traffics: ts.traffics.len(),
            h: vec![h; ts.traffics.len()],
            k,
            setup_cost,
            exploit_cost,
        }
    }

    /// Uniform unit setup / half-unit exploitation costs, a convenient
    /// default for experiments.
    pub fn uniform_costs(num_edges: usize) -> (Vec<f64>, Vec<f64>) {
        (vec![1.0; num_edges], vec![0.5; num_edges])
    }

    /// Total volume over all paths.
    pub fn total_volume(&self) -> f64 {
        self.paths.iter().map(|p| p.volume).sum()
    }

    /// Volume of one traffic (over its paths).
    pub fn traffic_volume(&self, t: usize) -> f64 {
        self.paths
            .iter()
            .filter(|p| p.traffic == t)
            .map(|p| p.volume)
            .sum()
    }

    /// Monitored volume of every path under sampling rates `r`
    /// (`v_p · min(1, Σ_{e ∈ p} r_e)` — cascaded rates accumulate).
    pub fn monitored_volumes(&self, rates: &[f64]) -> Vec<f64> {
        self.paths
            .iter()
            .map(|p| {
                let r: f64 = p.edges.iter().map(|&e| rates[e]).sum();
                p.volume * r.min(1.0)
            })
            .collect()
    }

    /// Total monitored volume under rates `r`.
    pub fn total_monitored(&self, rates: &[f64]) -> f64 {
        self.monitored_volumes(rates).iter().sum()
    }

    /// Checks a `(installed, rates)` pair against all constraints with
    /// tolerance `tol`; returns a description of the first violation.
    pub fn check_solution(
        &self,
        installed: &[bool],
        rates: &[f64],
        tol: f64,
    ) -> Result<(), String> {
        if installed.len() != self.num_edges || rates.len() != self.num_edges {
            return Err("wrong arity".into());
        }
        for e in 0..self.num_edges {
            if rates[e] < -tol || rates[e] > 1.0 + tol {
                return Err(format!("rate r_{e} = {} outside [0, 1]", rates[e]));
            }
            if rates[e] > tol && !installed[e] {
                return Err(format!("sampling on link {e} without a device"));
            }
        }
        let mon = self.monitored_volumes(rates);
        for t in 0..self.num_traffics {
            let vt = self.traffic_volume(t);
            let mt: f64 = self
                .paths
                .iter()
                .zip(&mon)
                .filter(|(p, _)| p.traffic == t)
                .map(|(_, m)| m)
                .sum();
            if mt + tol * vt.max(1.0) < self.h[t] * vt {
                return Err(format!(
                    "traffic {t} monitored {mt} < h·v = {}",
                    self.h[t] * vt
                ));
            }
        }
        let total = self.total_volume();
        let covered: f64 = mon.iter().sum();
        if covered + tol * total.max(1.0) < self.k * total {
            return Err(format!(
                "global coverage {covered} < k·V = {}",
                self.k * total
            ));
        }
        Ok(())
    }
}

/// A solution to `PPME(h, k)`.
#[derive(Debug, Clone)]
pub struct PpmeSolution {
    /// Device installed on each link.
    pub installed: Vec<bool>,
    /// Sampling ratio per link (0 where no device).
    pub rates: Vec<f64>,
    /// Monitored share `δ_p` per path.
    pub deltas: Vec<f64>,
    /// `Σ cost_i(e)·x_e`.
    pub setup_cost: f64,
    /// `Σ cost_e(e)·r_e`.
    pub exploit_cost: f64,
    /// Whether branch-and-bound proved optimality.
    pub proven_optimal: bool,
}

impl PpmeSolution {
    /// Total objective value.
    pub fn total_cost(&self) -> f64 {
        self.setup_cost + self.exploit_cost
    }

    /// Number of installed devices.
    pub fn device_count(&self) -> usize {
        self.installed.iter().filter(|&&b| b).count()
    }
}

/// Builds Linear Program 3. Returns the model and the `(x, r, δ)` variable
/// blocks.
pub fn build_lp3(prob: &SamplingProblem) -> (Model, Vec<VarId>, Vec<VarId>, Vec<VarId>) {
    let mut m = Model::new(Sense::Minimize);
    let xs: Vec<VarId> = (0..prob.num_edges)
        .map(|e| {
            m.add_var(
                format!("x_e{e}"),
                VarKind::Binary,
                0.0,
                1.0,
                prob.setup_cost[e],
            )
        })
        .collect();
    let rs: Vec<VarId> = (0..prob.num_edges)
        .map(|e| {
            m.add_var(
                format!("r_e{e}"),
                VarKind::Continuous,
                0.0,
                1.0,
                prob.exploit_cost[e],
            )
        })
        .collect();
    let ds: Vec<VarId> = (0..prob.paths.len())
        .map(|p| m.add_var(format!("delta_p{p}"), VarKind::Continuous, 0.0, 1.0, 0.0))
        .collect();

    // Σ_{e ∈ p} r_e − δ_p ≥ 0.
    for (p, path) in prob.paths.iter().enumerate() {
        let mut terms: Vec<(VarId, f64)> = path.edges.iter().map(|&e| (rs[e], 1.0)).collect();
        terms.push((ds[p], -1.0));
        m.add_constr(terms, Cmp::Ge, 0.0);
    }
    // x_e ≥ r_e.
    for e in 0..prob.num_edges {
        m.add_constr(vec![(xs[e], 1.0), (rs[e], -1.0)], Cmp::Ge, 0.0);
    }
    // Per-traffic floors.
    for t in 0..prob.num_traffics {
        let vt = prob.traffic_volume(t);
        if vt <= 0.0 || prob.h[t] <= 0.0 {
            continue;
        }
        let terms: Vec<(VarId, f64)> = prob
            .paths
            .iter()
            .enumerate()
            .filter(|(_, p)| p.traffic == t)
            .map(|(i, p)| (ds[i], p.volume))
            .collect();
        m.add_constr(terms, Cmp::Ge, prob.h[t] * vt);
    }
    // Global coverage.
    let terms: Vec<(VarId, f64)> = prob
        .paths
        .iter()
        .enumerate()
        .map(|(i, p)| (ds[i], p.volume))
        .collect();
    m.add_constr(terms, Cmp::Ge, prob.k * prob.total_volume());

    (m, xs, rs, ds)
}

/// Options for [`solve_ppme`].
pub type PpmeOptions = crate::passive::ExactOptions;

/// Solves `PPME(h, k)` to optimality (subject to node/time limits and the
/// optional relative gap of [`PpmeOptions`]).
///
/// Returns `None` when the instance is infeasible (some traffic cannot meet
/// its floor even with every link monitored at rate 1).
///
/// The fixed-charge structure (pay `cost_i(e)` as soon as `r_e > 0`) gives
/// the LP relaxation a loose bound, so the MIP is seeded with a full-cover
/// incumbent: the optimal `PPM(1)` devices at sampling rate 1, which
/// satisfies every floor. On larger instances prefer a nonzero
/// [`PpmeOptions::rel_gap`] (e.g. `0.02`) — branch-and-bound without
/// strong cuts closes the last percent slowly.
pub fn solve_ppme(prob: &SamplingProblem, opts: &PpmeOptions) -> Option<PpmeSolution> {
    let (mut model, xs, rs, ds) = build_lp3(prob);

    if opts.warm_start {
        if let Some(warm) = full_cover_incumbent(prob, opts) {
            model.set_initial_solution(warm);
        }
    }

    let mip_opts = MipOptions {
        max_nodes: opts.max_nodes,
        time_limit: opts.time_limit,
        rel_gap: opts.rel_gap,
        ..Default::default()
    };
    let sol = match model.solve_mip_with(&mip_opts) {
        Ok(s) => s,
        Err(milp::SolverError::Infeasible) => return None,
        Err(e) => panic!("MIP solver failed unexpectedly: {e}"),
    };
    let installed: Vec<bool> = xs.iter().map(|&x| sol.is_one(x, 1e-4)).collect();
    let rates: Vec<f64> = rs.iter().map(|&r| sol.value(r).clamp(0.0, 1.0)).collect();
    let deltas: Vec<f64> = ds.iter().map(|&d| sol.value(d).clamp(0.0, 1.0)).collect();
    let setup_cost: f64 = installed
        .iter()
        .zip(&prob.setup_cost)
        .filter(|(i, _)| **i)
        .map(|(_, c)| c)
        .sum();
    let exploit_cost: f64 = rates
        .iter()
        .zip(&prob.exploit_cost)
        .map(|(r, c)| r * c)
        .sum();
    Some(PpmeSolution {
        installed,
        rates,
        deltas,
        setup_cost,
        exploit_cost,
        proven_optimal: sol.status == SolveStatus::Optimal,
    })
}

/// Builds a feasible LP3 assignment from the optimal `PPM(1)` cover with
/// all devices sampling at rate 1 — `δ_p = 1` for every coverable path, so
/// all floors and the global target hold whenever full cover is possible.
/// Variable layout must match [`build_lp3`]: `x` block, `r` block, `δ`
/// block.
fn full_cover_incumbent(prob: &SamplingProblem, opts: &PpmeOptions) -> Option<Vec<f64>> {
    let inst = crate::instance::PpmInstance::new(
        prob.num_edges,
        prob.paths
            .iter()
            .map(|p| (p.volume, p.edges.clone()))
            .collect(),
    );
    // Keep the inner PPM solve cheap: it only seeds the incumbent.
    let inner = crate::passive::ExactOptions {
        max_nodes: 2_000,
        time_limit: Some(std::time::Duration::from_secs(10)),
        warm_start: true,
        rel_gap: opts.rel_gap.max(1e-9),
        work_budget: None,
    };
    let cover = crate::passive::solve_ppm_exact(&inst, 1.0, &inner)
        .or_else(|| crate::passive::greedy_adaptive(&inst, 1.0))?;
    let mut values = vec![0.0; prob.num_edges * 2 + prob.paths.len()];
    for &e in &cover.edges {
        values[e] = 1.0; // x_e
        values[prob.num_edges + e] = 1.0; // r_e
    }
    for (i, path) in prob.paths.iter().enumerate() {
        let covered = path.edges.iter().any(|&e| cover.edges.contains(&e));
        values[2 * prob.num_edges + i] = if covered { 1.0 } else { 0.0 };
    }
    Some(values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use popgen::{PopSpec, TrafficSpec};

    fn small_problem(h: f64, k: f64) -> SamplingProblem {
        // Figure-3-like instance with explicit paths (single-routed).
        SamplingProblem {
            num_edges: 5,
            paths: vec![
                SamplingPath {
                    edges: vec![0, 1],
                    volume: 2.0,
                    traffic: 0,
                },
                SamplingPath {
                    edges: vec![0, 2],
                    volume: 2.0,
                    traffic: 1,
                },
                SamplingPath {
                    edges: vec![1, 3],
                    volume: 1.0,
                    traffic: 2,
                },
                SamplingPath {
                    edges: vec![2, 4],
                    volume: 1.0,
                    traffic: 3,
                },
            ],
            num_traffics: 4,
            h: vec![h; 4],
            k,
            setup_cost: vec![1.0; 5],
            exploit_cost: vec![0.5; 5],
        }
    }

    #[test]
    fn full_coverage_solution_is_valid() {
        let prob = small_problem(0.0, 1.0);
        let s = solve_ppme(&prob, &PpmeOptions::default()).unwrap();
        prob.check_solution(&s.installed, &s.rates, 1e-6).unwrap();
        assert!(s.proven_optimal);
        // Full coverage needs rates summing to >= 1 on every path; two
        // devices at rate 1 on links 1 and 2 do it: cost 2 + 1.0.
        assert!(
            (s.total_cost() - 3.0).abs() < 1e-5,
            "cost = {}",
            s.total_cost()
        );
    }

    #[test]
    fn partial_coverage_is_cheaper() {
        let prob_full = small_problem(0.0, 1.0);
        let prob_part = small_problem(0.0, 0.6);
        let full = solve_ppme(&prob_full, &PpmeOptions::default()).unwrap();
        let part = solve_ppme(&prob_part, &PpmeOptions::default()).unwrap();
        assert!(part.total_cost() < full.total_cost());
        prob_part
            .check_solution(&part.installed, &part.rates, 1e-6)
            .unwrap();
    }

    #[test]
    fn sampling_rates_can_be_fractional() {
        // k = 0.5 with cheap exploitation: sampling part of the heavy link
        // beats full-rate monitoring.
        let prob = small_problem(0.0, 0.5);
        let s = solve_ppme(&prob, &PpmeOptions::default()).unwrap();
        let frac = s.rates.iter().any(|&r| r > 1e-6 && r < 1.0 - 1e-6);
        assert!(
            frac,
            "expected a fractional sampling rate, got {:?}",
            s.rates
        );
    }

    #[test]
    fn per_traffic_floor_enforced() {
        // k = 0.5 could ignore the light traffics entirely, but h = 0.4
        // forces some sampling on every traffic's path.
        let prob = small_problem(0.4, 0.5);
        let s = solve_ppme(&prob, &PpmeOptions::default()).unwrap();
        prob.check_solution(&s.installed, &s.rates, 1e-6).unwrap();
        let mon = prob.monitored_volumes(&s.rates);
        for t in 0..4 {
            let mt: f64 = prob
                .paths
                .iter()
                .zip(&mon)
                .filter(|(p, _)| p.traffic == t)
                .map(|(_, m)| m)
                .sum();
            assert!(mt + 1e-6 >= 0.4 * prob.traffic_volume(t), "traffic {t}");
        }
    }

    #[test]
    fn devices_follow_rates() {
        let prob = small_problem(0.0, 0.8);
        let s = solve_ppme(&prob, &PpmeOptions::default()).unwrap();
        for e in 0..prob.num_edges {
            if s.rates[e] > 1e-6 {
                assert!(s.installed[e], "rate without device on link {e}");
            }
        }
    }

    #[test]
    fn multi_routed_problem_from_pop() {
        let pop = PopSpec::small().build();
        let multi = TrafficSpec::default().generate_multi(&pop, 5, 2);
        let (ci, ce) = SamplingProblem::uniform_costs(pop.graph.edge_count());
        let prob = SamplingProblem::from_multi(&pop.graph, &multi, 0.1, 0.6, ci, ce);
        assert!(
            prob.paths.len() > prob.num_traffics,
            "multi-routing adds paths"
        );
        let s = solve_ppme(&prob, &PpmeOptions::default()).unwrap();
        prob.check_solution(&s.installed, &s.rates, 1e-5).unwrap();
    }

    #[test]
    #[should_panic(expected = "h_t must not exceed k")]
    fn h_above_k_rejected() {
        let pop = PopSpec::small().build();
        let multi = TrafficSpec::default().generate_multi(&pop, 5, 1);
        let (ci, ce) = SamplingProblem::uniform_costs(pop.graph.edge_count());
        SamplingProblem::from_multi(&pop.graph, &multi, 0.9, 0.5, ci, ce);
    }

    #[test]
    fn check_solution_catches_violations() {
        let prob = small_problem(0.0, 1.0);
        // No devices, no rates: global coverage violated.
        assert!(prob.check_solution(&[false; 5], &[0.0; 5], 1e-9).is_err());
        // Rate without device.
        assert!(prob
            .check_solution(&[false; 5], &[1.0, 0.0, 0.0, 0.0, 0.0], 1e-9)
            .is_err());
        // Valid: devices+rate 1 on links 1 and 2.
        let installed = [false, true, true, false, false];
        let rates = [0.0, 1.0, 1.0, 0.0, 0.0];
        prob.check_solution(&installed, &rates, 1e-9).unwrap();
    }
}
