//! `PPME*(x, h, k)` — re-optimizing sampling rates under dynamic traffic
//! (paper Section 5.4).
//!
//! Once devices are installed they cannot move ("it implies human
//! maintenance on each router"), but sampling ratios can track the traffic.
//! With the `x_e` fixed, Linear Program 3 loses its binaries and becomes a
//! plain LP solvable in polynomial time; the paper also notes the problem
//! "can be expressed as a minimum cost flow problem". Both solvers are
//! here, plus the threshold controller:
//!
//! ```text
//! 1. While Σ δ_p v_p ≥ T · Σ v_p:  wait;
//! 2. When it drops below:          recompute PPME*(x, h, k), update rates;
//! 3. Goto 1.
//! ```

use mcmf::mecf::MonitoringInstance;
use milp::{Cmp, Model, Sense, SolverError, VarId, VarKind};
use popgen::dynamic::TrafficProcess;

use crate::sampling::SamplingProblem;

/// Re-optimized sampling rates for a fixed deployment.
#[derive(Debug, Clone)]
pub struct RatesSolution {
    /// Sampling ratio per link (0 on links without a device).
    pub rates: Vec<f64>,
    /// `Σ cost_e(e) · r_e`.
    pub exploit_cost: f64,
    /// Monitored volume achieved under the rate semantics.
    pub monitored: f64,
}

/// Solves `PPME*(x, h, k)` exactly as an LP: minimize the exploitation cost
/// of the installed devices subject to the per-traffic floors and the
/// global `k` target. Returns `None` when the installed set cannot reach
/// the floors at any rates.
pub fn reoptimize_rates(prob: &SamplingProblem, installed: &[bool]) -> Option<RatesSolution> {
    assert_eq!(installed.len(), prob.num_edges, "one flag per link");
    let mut m = Model::new(Sense::Minimize);
    let rs: Vec<VarId> = (0..prob.num_edges)
        .map(|e| {
            let hi = if installed[e] { 1.0 } else { 0.0 };
            m.add_var(
                format!("r_e{e}"),
                VarKind::Continuous,
                0.0,
                hi,
                prob.exploit_cost[e],
            )
        })
        .collect();
    let ds: Vec<VarId> = (0..prob.paths.len())
        .map(|p| m.add_var(format!("delta_p{p}"), VarKind::Continuous, 0.0, 1.0, 0.0))
        .collect();
    for (p, path) in prob.paths.iter().enumerate() {
        let mut terms: Vec<(VarId, f64)> = path.edges.iter().map(|&e| (rs[e], 1.0)).collect();
        terms.push((ds[p], -1.0));
        m.add_constr(terms, Cmp::Ge, 0.0);
    }
    for t in 0..prob.num_traffics {
        let vt = prob.traffic_volume(t);
        if vt <= 0.0 || prob.h[t] <= 0.0 {
            continue;
        }
        let terms: Vec<(VarId, f64)> = prob
            .paths
            .iter()
            .enumerate()
            .filter(|(_, p)| p.traffic == t)
            .map(|(i, p)| (ds[i], p.volume))
            .collect();
        m.add_constr(terms, Cmp::Ge, prob.h[t] * vt);
    }
    let terms: Vec<(VarId, f64)> = prob
        .paths
        .iter()
        .enumerate()
        .map(|(i, p)| (ds[i], p.volume))
        .collect();
    m.add_constr(terms, Cmp::Ge, prob.k * prob.total_volume());

    let sol = match m.solve_lp() {
        Ok(s) => s,
        Err(SolverError::Infeasible) => return None,
        Err(e) => panic!("LP solver failed unexpectedly: {e}"),
    };
    let rates: Vec<f64> = rs.iter().map(|&r| sol.value(r).clamp(0.0, 1.0)).collect();
    let exploit_cost = rates
        .iter()
        .zip(&prob.exploit_cost)
        .map(|(r, c)| r * c)
        .sum();
    let monitored = prob.total_monitored(&rates);
    Some(RatesSolution {
        rates,
        exploit_cost,
        monitored,
    })
}

/// Fast min-cost-flow relaxation of `PPME*` for single-path traffics under
/// the *volume-attribution* semantics (each device may dedicate sampling
/// capacity per traffic, as with the packet-marking techniques of Section
/// 5.2): route `k·V` units through the MECF auxiliary graph restricted to
/// installed links, with per-unit cost `cost_e(e)/load(e)`.
///
/// The returned cost lower-bounds the LP optimum of [`reoptimize_rates`]
/// (the attribution semantics is more flexible than a single per-device
/// rate); the derived rates `r_e = flow_e / load(e)` are a fast warm
/// estimate, not guaranteed to meet per-traffic floors. Returns `None`
/// when the installed links cannot carry `k·V`.
pub fn reoptimize_rates_flow(prob: &SamplingProblem, installed: &[bool]) -> Option<RatesSolution> {
    assert_eq!(installed.len(), prob.num_edges, "one flag per link");
    // Build a monitoring instance over installed links only (uninstalled
    // links get pruned from supports; traffics with no installed link keep
    // an empty support and simply cannot be attributed).
    let traffics: Vec<(f64, Vec<usize>)> = prob
        .paths
        .iter()
        .map(|p| {
            (
                p.volume,
                p.edges
                    .iter()
                    .copied()
                    .filter(|&e| installed[e])
                    .collect::<Vec<_>>(),
            )
        })
        .collect();
    let inst = MonitoringInstance {
        num_edges: prob.num_edges,
        traffics,
    };
    let loads = inst.edge_loads();
    let costs: Vec<f64> = (0..prob.num_edges)
        .map(|e| {
            if loads[e] > 1e-12 {
                prob.exploit_cost[e] / loads[e]
            } else {
                1e12
            }
        })
        .collect();
    let mut g = mcmf::mecf::build_mecf(&inst, &costs);
    let demand = prob.k * prob.total_volume();
    let res = mcmf::mincost::min_cost_flow(&mut g.net, g.source, g.sink, demand);
    if res.flow + 1e-9 < demand {
        return None;
    }
    let rates: Vec<f64> = g
        .edge_arcs
        .iter()
        .enumerate()
        .map(|(e, &a)| {
            if loads[e] > 1e-12 {
                (g.net.flow(a) / loads[e]).clamp(0.0, 1.0)
            } else {
                0.0
            }
        })
        .collect();
    let exploit_cost = rates
        .iter()
        .zip(&prob.exploit_cost)
        .map(|(r, c)| r * c)
        .sum();
    let monitored = prob.total_monitored(&rates);
    Some(RatesSolution {
        rates,
        exploit_cost,
        monitored,
    })
}

/// Configuration of the Section 5.4 threshold controller.
#[derive(Debug, Clone)]
pub struct ControllerSpec {
    /// Global target `k` restored at each re-optimization.
    pub k: f64,
    /// Per-traffic floor `h` used at re-optimization.
    pub h: f64,
    /// Tolerance threshold `T < k`: re-optimize when coverage drops below
    /// `T · V`.
    pub threshold: f64,
}

/// One step of the controller trace.
#[derive(Debug, Clone)]
pub struct ControllerStep {
    /// Process step index (1-based).
    pub step: usize,
    /// Coverage fraction observed *before* any action this step.
    pub coverage_before: f64,
    /// Whether the controller re-optimized at this step.
    pub reoptimized: bool,
    /// Coverage fraction after the action (equals `coverage_before` when
    /// no action was taken).
    pub coverage_after: f64,
    /// Exploitation cost of the rates in force after the step.
    pub exploit_cost: f64,
}

/// Full trace of a controller run.
#[derive(Debug, Clone)]
pub struct ControllerTrace {
    /// Per-step records.
    pub steps: Vec<ControllerStep>,
    /// Number of re-optimizations performed.
    pub reoptimizations: usize,
}

/// Runs the threshold controller for `steps` steps of the traffic process.
///
/// `installed` is the fixed deployment (`x` in `PPME*(x, h, k)`); the
/// controller starts from freshly optimized rates, then at each step
/// recomputes achieved coverage under the *new* volumes and re-optimizes
/// only when it falls below `T · V`.
///
/// # Panics
///
/// Panics when `threshold ≥ k` (the paper requires `T < k`) or when the
/// initial problem is infeasible for the installed set.
pub fn run_controller(
    process: &mut TrafficProcess,
    graph: &netgraph::Graph,
    installed: &[bool],
    spec: &ControllerSpec,
    setup_cost: Vec<f64>,
    exploit_cost: Vec<f64>,
    steps: usize,
) -> ControllerTrace {
    assert!(spec.threshold < spec.k, "tolerance threshold T must be < k");
    let build = |ts: &popgen::TrafficSet| {
        SamplingProblem::from_traffic_set(
            graph,
            ts,
            spec.h,
            spec.k,
            setup_cost.clone(),
            exploit_cost.clone(),
        )
    };

    let prob0 = build(process.current());
    let mut rates = reoptimize_rates(&prob0, installed)
        .expect("initial PPME*(x, h, k) must be feasible for the installed set")
        .rates;

    let mut trace = ControllerTrace {
        steps: Vec::with_capacity(steps),
        reoptimizations: 0,
    };
    for _ in 0..steps {
        process.step();
        let prob = build(process.current());
        let total = prob.total_volume();
        let before = if total > 0.0 {
            prob.total_monitored(&rates) / total
        } else {
            1.0
        };
        let mut reoptimized = false;
        if before < spec.threshold {
            if let Some(r) = reoptimize_rates(&prob, installed) {
                rates = r.rates;
                reoptimized = true;
                trace.reoptimizations += 1;
            }
            // When infeasible (the traffic drifted past what the installed
            // devices can see) keep the old rates: the operator would be
            // alerted; the trace shows coverage staying low.
        }
        let after = if total > 0.0 {
            prob.total_monitored(&rates) / total
        } else {
            1.0
        };
        let cost = rates
            .iter()
            .zip(&prob.exploit_cost)
            .map(|(r, c)| r * c)
            .sum();
        trace.steps.push(ControllerStep {
            step: process.steps(),
            coverage_before: before,
            reoptimized,
            coverage_after: after,
            exploit_cost: cost,
        });
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampling::SamplingPath;
    use popgen::dynamic::DynamicSpec;
    use popgen::{PopSpec, TrafficSpec};

    fn small_problem(k: f64) -> SamplingProblem {
        SamplingProblem {
            num_edges: 5,
            paths: vec![
                SamplingPath {
                    edges: vec![0, 1],
                    volume: 2.0,
                    traffic: 0,
                },
                SamplingPath {
                    edges: vec![0, 2],
                    volume: 2.0,
                    traffic: 1,
                },
                SamplingPath {
                    edges: vec![1, 3],
                    volume: 1.0,
                    traffic: 2,
                },
                SamplingPath {
                    edges: vec![2, 4],
                    volume: 1.0,
                    traffic: 3,
                },
            ],
            num_traffics: 4,
            h: vec![0.0; 4],
            k,
            setup_cost: vec![1.0; 5],
            exploit_cost: vec![0.5; 5],
        }
    }

    #[test]
    fn reoptimize_meets_target() {
        let prob = small_problem(0.9);
        let installed = vec![true, true, true, false, false];
        let r = reoptimize_rates(&prob, &installed).unwrap();
        assert!(r.monitored + 1e-6 >= 0.9 * prob.total_volume());
        prob.check_solution(&installed, &r.rates, 1e-6).unwrap();
    }

    #[test]
    fn reoptimize_infeasible_when_devices_missing() {
        let prob = small_problem(1.0);
        // Only the heavy link installed: traffics 2 and 3 unreachable.
        let installed = vec![true, false, false, false, false];
        assert!(reoptimize_rates(&prob, &installed).is_none());
        // But 4/6 of the volume is reachable.
        let prob2 = small_problem(4.0 / 6.0);
        assert!(reoptimize_rates(&prob2, &installed).is_some());
    }

    #[test]
    fn rates_zero_on_uninstalled_links() {
        let prob = small_problem(0.8);
        let installed = vec![true, true, true, false, false];
        let r = reoptimize_rates(&prob, &installed).unwrap();
        assert_eq!(r.rates[3], 0.0);
        assert_eq!(r.rates[4], 0.0);
    }

    #[test]
    fn flow_relaxation_lower_bounds_lp() {
        let prob = small_problem(0.8);
        let installed = vec![true, true, true, false, false];
        let lp = reoptimize_rates(&prob, &installed).unwrap();
        let flow = reoptimize_rates_flow(&prob, &installed).unwrap();
        assert!(
            flow.exploit_cost <= lp.exploit_cost + 1e-6,
            "flow {} vs lp {}",
            flow.exploit_cost,
            lp.exploit_cost
        );
    }

    #[test]
    fn flow_relaxation_detects_infeasibility() {
        let prob = small_problem(1.0);
        let installed = vec![true, false, false, false, false];
        assert!(reoptimize_rates_flow(&prob, &installed).is_none());
    }

    #[test]
    fn controller_maintains_coverage() {
        let pop = PopSpec::paper_10().build();
        let ts = TrafficSpec::default().generate(&pop, 3);
        let ne = pop.graph.edge_count();

        // Install devices from an exact PPM solve at k = 0.95.
        let inst = crate::instance::PpmInstance::from_traffic(&pop.graph, &ts);
        let sol = crate::passive::solve_ppm_exact(&inst, 0.95, &Default::default()).unwrap();
        let mut installed = vec![false; ne];
        for &e in &sol.edges {
            installed[e] = true;
        }

        let spec = ControllerSpec {
            k: 0.9,
            h: 0.0,
            threshold: 0.85,
        };
        let mut process = TrafficProcess::new(ts, DynamicSpec::default(), 11);
        let trace = run_controller(
            &mut process,
            &pop.graph,
            &installed,
            &spec,
            vec![1.0; ne],
            vec![0.5; ne],
            30,
        );
        assert_eq!(trace.steps.len(), 30);
        // Whenever the controller acted and the problem stayed feasible,
        // coverage returns to >= k.
        for s in &trace.steps {
            if s.reoptimized {
                assert!(
                    s.coverage_after + 1e-6 >= spec.threshold.min(spec.k),
                    "step {} after reopt: {}",
                    s.step,
                    s.coverage_after
                );
            }
        }
    }

    #[test]
    fn controller_reoptimizes_under_drift() {
        let pop = PopSpec::paper_10().build();
        let ts = TrafficSpec::default().generate(&pop, 3);
        let ne = pop.graph.edge_count();
        let installed = vec![true; ne]; // full deployment: always feasible
        let spec = ControllerSpec {
            k: 0.95,
            h: 0.0,
            threshold: 0.93,
        };
        let drift = DynamicSpec {
            shift_probability: 0.5,
            ..Default::default()
        };
        let mut process = TrafficProcess::new(ts, drift, 7);
        let trace = run_controller(
            &mut process,
            &pop.graph,
            &installed,
            &spec,
            vec![1.0; ne],
            vec![0.5; ne],
            40,
        );
        assert!(
            trace.reoptimizations > 0,
            "drift must trigger re-optimizations"
        );
        // After every re-optimization coverage is restored to >= k.
        for s in trace.steps.iter().filter(|s| s.reoptimized) {
            assert!(s.coverage_after + 1e-6 >= spec.k);
        }
    }

    #[test]
    #[should_panic(expected = "T must be < k")]
    fn controller_rejects_threshold_at_k() {
        let pop = PopSpec::paper_10().build();
        let ts = TrafficSpec::default().generate(&pop, 3);
        let ne = pop.graph.edge_count();
        let mut process = TrafficProcess::new(ts, DynamicSpec::default(), 1);
        let spec = ControllerSpec {
            k: 0.9,
            h: 0.0,
            threshold: 0.9,
        };
        run_controller(
            &mut process,
            &pop.graph,
            &vec![true; ne],
            &spec,
            vec![1.0; ne],
            vec![0.5; ne],
            1,
        );
    }
}
