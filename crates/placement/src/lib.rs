//! Monitor-placement algorithms from *Optimal Positioning of Active and
//! Passive Monitoring Devices* (Chaudet, Fleury, Guérin Lassous, Rivano,
//! Voge — CoNEXT 2005).
//!
//! This crate is the paper's contribution proper, built on the substrates
//! of the workspace (`netgraph`, `milp`, `mcmf`, `popgen`):
//!
//! * [`instance`] — the combinatorial monitoring instance (`PPM(k)`,
//!   Section 4.1) and its preprocessing (identical-support merging);
//! * [`setcover`] — the Minimum (Partial) Set Cover kernel with the greedy
//!   algorithm and its Slavík approximation bound (Section 4.2);
//! * [`reduction`] — both directions of Theorem 1 (`MSC ≡ PPM(1)`),
//!   constructing actual graphs and traffic sets;
//! * [`passive`] — `PPM(k)` solvers: the paper's decreasing-load greedy,
//!   the adaptive (set-cover) greedy, the flow greedy on the MECF
//!   relaxation, the exact LP 2 MIP, the LP 1 arc-path MIP for
//!   cross-validation, brute force for tests, and the incremental /
//!   budget-constrained variants (Sections 4.3–4.4);
//! * [`sampling`] — `PPME(h, k)` with setup and exploitation costs and
//!   multi-routed traffics (Section 5, Linear Program 3);
//! * [`dynamic`] — `PPME*(x, h, k)` re-optimization (LP and min-cost-flow
//!   forms) plus the threshold controller of Section 5.4;
//! * [`active`] — probe-set computation and beacon placement: the baseline
//!   of Nguyen–Thiran \[15\], the improved greedy, and the exact ILP
//!   (Section 6);
//! * [`cascade`] — Section 7's first future-work item: the refined
//!   independent-sampling model where rates on a path combine as
//!   `1 − Π(1 − r_e)` instead of adding;
//! * [`campaign`] — Section 7's third future-work item: measurement
//!   campaigns that re-route traffic over alternative paths to maximize
//!   the monitored ratio for a fixed deployment;
//! * [`delta`] — sweep grids as chains of deltas: one mutable instance
//!   whose exact solves are warm-started point to point (LP basis reuse)
//!   and whose link failures re-route only the crossing traffics;
//! * [`solve`] — the unified solve API: one typed
//!   [`SolveRequest`](solve::SolveRequest) → [`SolveOutcome`](solve::SolveOutcome)
//!   pair shared by the batch, delta-chain, and service entry points;
//! * [`resilience`] — Monte-Carlo resilience campaigns: a fixed placement
//!   scored over a sampled failure ensemble through one warm delta chain,
//!   plus the stochastic-aware greedy on expected coverage.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod active;
pub mod campaign;
pub mod cascade;
pub mod delta;
pub mod dynamic;
pub mod instance;
pub mod passive;
pub mod reduction;
pub mod resilience;
pub mod sampling;
pub mod setcover;
pub mod solve;

pub use delta::DeltaInstance;
pub use instance::PpmInstance;
pub use passive::PpmSolution;
pub use resilience::{EnsembleScore, ScenarioScore};
pub use solve::{
    ApmSolution, DegradeReason, Objective, PlacementError, SolveMethod, SolveOutcome, SolveRequest,
};
