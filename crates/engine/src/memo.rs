//! Typed, thread-safe memoization shared by every case of a scenario run.
//!
//! Experiment cases routinely repeat expensive, *deterministic*
//! sub-computations: solving the seeded deployment reused by every sweep
//! point, computing the probe set Φ that three beacon strategies then
//! consume, or building a shortest-path tree queried per traffic. `Memo`
//! caches those behind a `(domain, key)` pair so concurrent workers share
//! one `Arc`'d result.
//!
//! ## Contract
//!
//! * The builder closure must be **deterministic** — under contention two
//!   workers may both run it, the first insert wins, and both receive the
//!   stored value. Determinism makes that race unobservable, which is what
//!   keeps memoized parallel runs byte-identical to serial ones.
//! * A `(domain, key)` pair must always be used with the **same type** `T`;
//!   mixing types for one pair panics (it is a programming error, not a
//!   recoverable condition).

use std::any::Any;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex};

/// Key: a static domain label plus a caller-chosen 64-bit key (typically a
/// seed or an instance fingerprint).
type Key = (&'static str, u64);

/// Number of independently locked shards. A worker pool has at most a few
/// dozen threads, so 16 shards keep lock contention negligible without
/// bloating the (per-run, short-lived) structure.
const SHARDS: usize = 16;

type Shard = Mutex<HashMap<Key, Arc<dyn Any + Send + Sync>>>;

/// Thread-safe cache of `Arc<T>` values keyed by `(domain, u64)`.
///
/// Internally sharded by key hash so concurrent workers hitting different
/// keys (the common case: one entry per seed) never serialize on a single
/// lock.
pub struct Memo {
    shards: [Shard; SHARDS],
}

impl Default for Memo {
    fn default() -> Self {
        Memo {
            shards: std::array::from_fn(|_| Mutex::new(HashMap::new())),
        }
    }
}

fn shard_index(domain: &'static str, key: u64) -> usize {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    (domain, key).hash(&mut h);
    (h.finish() % SHARDS as u64) as usize
}

impl Memo {
    pub fn new() -> Self {
        Memo::default()
    }

    /// Returns the cached value for `(domain, key)`, computing it with
    /// `build` on first use. `build` runs outside the lock, so a slow
    /// build never blocks unrelated lookups.
    pub fn get_or_compute<T, F>(&self, domain: &'static str, key: u64, build: F) -> Arc<T>
    where
        T: Send + Sync + 'static,
        F: FnOnce() -> T,
    {
        if let Some(hit) = self.get::<T>(domain, key) {
            return hit;
        }
        let candidate: Arc<dyn Any + Send + Sync> = Arc::new(build());
        let stored = {
            let mut slots = self.shards[shard_index(domain, key)]
                .lock()
                .expect("memo poisoned");
            slots
                .entry((domain, key))
                .or_insert_with(|| candidate)
                .clone()
        };
        stored
            .downcast::<T>()
            .unwrap_or_else(|_| panic!("memo domain {domain:?} used with two different types"))
    }

    /// Non-computing lookup.
    pub fn get<T: Send + Sync + 'static>(&self, domain: &'static str, key: u64) -> Option<Arc<T>> {
        let slots = self.shards[shard_index(domain, key)]
            .lock()
            .expect("memo poisoned");
        slots.get(&(domain, key)).map(|v| {
            v.clone()
                .downcast::<T>()
                .unwrap_or_else(|_| panic!("memo domain {domain:?} used with two different types"))
        })
    }

    /// Number of cached entries (all domains).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("memo poisoned").len())
            .sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl std::fmt::Debug for Memo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Memo")
            .field("entries", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn computes_once_then_hits() {
        let memo = Memo::new();
        let mut builds = 0;
        let a = memo.get_or_compute("tree", 7, || {
            builds += 1;
            vec![1, 2, 3]
        });
        let b = memo.get_or_compute("tree", 7, || {
            builds += 1;
            vec![9, 9, 9]
        });
        assert_eq!(builds, 1);
        assert_eq!(*a, vec![1, 2, 3]);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn domains_and_keys_are_independent() {
        let memo = Memo::new();
        memo.get_or_compute("a", 0, || 1usize);
        memo.get_or_compute("a", 1, || 2usize);
        memo.get_or_compute("b", 0, || 3usize);
        assert_eq!(memo.len(), 3);
        assert_eq!(*memo.get::<usize>("a", 1).unwrap(), 2);
        assert!(memo.get::<usize>("a", 2).is_none());
    }

    #[test]
    #[should_panic(expected = "two different types")]
    fn type_confusion_panics() {
        let memo = Memo::new();
        memo.get_or_compute("x", 0, || 1usize);
        let _ = memo.get_or_compute("x", 0, || 1.0f64);
    }
}
