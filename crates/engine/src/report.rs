//! Deterministic scenario output: a CSV header plus one row per sweep
//! point, rendered identically regardless of how many workers produced the
//! underlying cases.

/// Aggregated output of one scenario run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioReport {
    /// Scenario name (from `ScenarioSpec::name`).
    pub name: String,
    /// CSV header line (no trailing newline).
    pub header: String,
    /// One CSV row per sweep point, in point order.
    pub rows: Vec<String>,
}

impl ScenarioReport {
    /// Full CSV: header, rows, trailing newline.
    pub fn to_csv(&self) -> String {
        let mut out = String::with_capacity(
            self.header.len() + 1 + self.rows.iter().map(|r| r.len() + 1).sum::<usize>(),
        );
        out.push_str(&self.header);
        out.push('\n');
        for row in &self.rows {
            out.push_str(row);
            out.push('\n');
        }
        out
    }

    /// Prints the CSV to stdout (the figure binaries' contract).
    pub fn print(&self) {
        print!("{}", self.to_csv());
    }
}

impl std::fmt::Display for ScenarioReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_csv())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_layout() {
        let r = ScenarioReport {
            name: "t".into(),
            header: "x,y".into(),
            rows: vec!["1,2".into(), "3,4".into()],
        };
        assert_eq!(r.to_csv(), "x,y\n1,2\n3,4\n");
        assert_eq!(format!("{r}"), r.to_csv());
    }
}
