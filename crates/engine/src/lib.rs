//! # engine — parallel scenario engine
//!
//! Runs experiment sweeps (`ScenarioSpec`) across a pool of worker threads
//! and aggregates per-case results into a deterministic [`ScenarioReport`].
//!
//! ## Model
//!
//! A scenario is a grid of **cases**: every *point* of the sweep's x-axis
//! crossed with every *seed*. Cases are independent by contract — the case
//! closure receives a [`Case`] (point, indices, seed, and a shared
//! [`memo::Memo`]) and must derive everything it needs from those, never
//! from mutable shared state. Under that contract the engine guarantees:
//!
//! * **determinism** — results are collected into slots indexed by case
//!   number and aggregated in slot order, so a run with `N` worker threads
//!   produces *byte-identical* reports to the serial run (pinned by this
//!   crate's unit tests and by `crates/bench/tests/engine_parity.rs`);
//! * **work conservation** — workers pull the next unclaimed case from a
//!   shared atomic cursor, so uneven case costs (e.g. an exact solver next
//!   to a greedy one) still load-balance.
//!
//! ## Memoization
//!
//! Cases frequently share expensive sub-computations: the same seeded
//! deployment solved once per sweep point, the same probe set reused by
//! three placement strategies, the same shortest-path tree queried per
//! traffic. [`memo::Memo`] is a typed, thread-safe cache keyed by
//! `(domain, u64)`; the first computation wins and everyone else gets the
//! shared `Arc`. Builders must be deterministic — the cache trades *time*,
//! never *values*, so memoized and unmemoized runs stay byte-identical.
//!
//! See `DESIGN.md` (workspace root) for the threading model rationale.

#![forbid(unsafe_code)]

pub mod memo;
pub mod report;

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

pub use memo::Memo;
pub use report::ScenarioReport;

/// A sweep description: named x-axis points crossed with seeds.
#[derive(Debug, Clone)]
pub struct ScenarioSpec<P> {
    /// Scenario name (used as the report name).
    pub name: String,
    /// X-axis points, in output order.
    pub points: Vec<P>,
    /// Seeds `0..seeds_per_point` run for every point.
    pub seeds_per_point: u64,
}

impl<P> ScenarioSpec<P> {
    pub fn new(name: impl Into<String>, points: Vec<P>) -> Self {
        ScenarioSpec { name: name.into(), points, seeds_per_point: 1 }
    }

    pub fn with_seeds(mut self, seeds: u64) -> Self {
        self.seeds_per_point = seeds.max(1);
        self
    }

    /// Total number of cases in the grid.
    pub fn case_count(&self) -> usize {
        self.points.len() * self.seeds_per_point as usize
    }
}

/// One unit of work handed to the case closure.
pub struct Case<'a, P> {
    /// The sweep point this case belongs to.
    pub point: &'a P,
    /// Index of `point` within `ScenarioSpec::points`.
    pub point_index: usize,
    /// Seed in `0..seeds_per_point`.
    pub seed: u64,
    /// Cache shared by every case of this `run`.
    pub memo: &'a Memo,
}

/// The scenario engine: a worker-pool executor for [`ScenarioSpec`]s.
#[derive(Debug, Clone)]
pub struct Engine {
    threads: usize,
}

impl Engine {
    /// Single-threaded reference engine (the determinism baseline).
    pub fn serial() -> Self {
        Engine { threads: 1 }
    }

    /// Engine with exactly `n` worker threads (clamped to at least 1).
    pub fn with_threads(n: usize) -> Self {
        Engine { threads: n.max(1) }
    }

    /// Thread count from `POPMON_THREADS`, else the machine's available
    /// parallelism, else 1.
    pub fn from_env() -> Self {
        let threads = std::env::var("POPMON_THREADS")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
            });
        Engine::with_threads(threads)
    }

    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs every case of the grid and returns the results grouped by
    /// point (outer vec in point order, inner vec in seed order).
    ///
    /// The case closure must be deterministic in `(point, seed)`; see the
    /// crate docs for the full independence contract.
    pub fn run_cases<P, R, F>(&self, spec: &ScenarioSpec<P>, case: F) -> Vec<Vec<R>>
    where
        P: Sync,
        R: Send,
        F: Fn(Case<'_, P>) -> R + Sync,
    {
        let seeds = spec.seeds_per_point.max(1);
        let total = spec.points.len() * seeds as usize;
        let memo = Memo::new();

        let run_one = |i: usize| {
            let point_index = i / seeds as usize;
            let seed = (i % seeds as usize) as u64;
            case(Case { point: &spec.points[point_index], point_index, seed, memo: &memo })
        };

        let mut slots: Vec<Option<R>> = if self.threads <= 1 || total <= 1 {
            (0..total).map(|i| Some(run_one(i))).collect()
        } else {
            let cursor = AtomicUsize::new(0);
            let results = Mutex::new((0..total).map(|_| None).collect::<Vec<Option<R>>>());
            let workers = self.threads.min(total);
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= total {
                            break;
                        }
                        let r = run_one(i);
                        results.lock().expect("result store poisoned")[i] = Some(r);
                    });
                }
            });
            results.into_inner().expect("result store poisoned")
        };

        let mut grouped = Vec::with_capacity(spec.points.len());
        for p in 0..spec.points.len() {
            let row: Vec<R> = slots[p * seeds as usize..(p + 1) * seeds as usize]
                .iter_mut()
                .map(|s| s.take().expect("worker pool left a case unfilled"))
                .collect();
            grouped.push(row);
        }
        grouped
    }

    /// Runs the grid and renders one CSV row per point via `row`.
    ///
    /// `row` receives the point and its seed-ordered case results; the
    /// returned [`ScenarioReport`] is byte-identical for any thread count.
    pub fn run_report<P, R, F, G>(
        &self,
        spec: &ScenarioSpec<P>,
        header: impl Into<String>,
        case: F,
        row: G,
    ) -> ScenarioReport
    where
        P: Sync,
        R: Send,
        F: Fn(Case<'_, P>) -> R + Sync,
        G: Fn(&P, &[R]) -> String,
    {
        let grouped = self.run_cases(spec, case);
        let rows = spec
            .points
            .iter()
            .zip(&grouped)
            .map(|(p, results)| row(p, results))
            .collect();
        ScenarioReport { name: spec.name.clone(), header: header.into(), rows }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_shape_and_order() {
        let spec = ScenarioSpec::new("shape", vec![10usize, 20, 30]).with_seeds(4);
        assert_eq!(spec.case_count(), 12);
        let grouped = Engine::serial().run_cases(&spec, |c| (*c.point, c.seed));
        assert_eq!(grouped.len(), 3);
        for (pi, row) in grouped.iter().enumerate() {
            assert_eq!(row.len(), 4);
            for (s, &(p, seed)) in row.iter().enumerate() {
                assert_eq!(p, spec.points[pi]);
                assert_eq!(seed, s as u64);
            }
        }
    }

    #[test]
    fn parallel_matches_serial() {
        let spec = ScenarioSpec::new("parity", (0..17u64).collect()).with_seeds(5);
        let case = |c: Case<'_, u64>| {
            // Arbitrary deterministic arithmetic with some work imbalance.
            let mut acc = c.point.wrapping_mul(0x9E37_79B9).wrapping_add(c.seed);
            for _ in 0..(c.point % 7) * 1000 {
                acc = acc.rotate_left(7) ^ 0xDEAD_BEEF;
            }
            acc
        };
        let serial = Engine::serial().run_cases(&spec, case);
        let parallel = Engine::with_threads(4).run_cases(&spec, case);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn report_is_thread_count_invariant() {
        let spec = ScenarioSpec::new("report", vec![1.0f64, 2.0, 4.0]).with_seeds(3);
        let mk = |e: Engine| {
            e.run_report(
                &spec,
                "x,sum",
                |c| c.point * (c.seed as f64 + 1.0),
                |p, rs| format!("{p},{}", rs.iter().sum::<f64>()),
            )
        };
        let a = mk(Engine::serial());
        let b = mk(Engine::with_threads(3));
        assert_eq!(a.to_csv(), b.to_csv());
        assert_eq!(a.rows.len(), 3);
    }

    #[test]
    fn from_env_is_positive() {
        assert!(Engine::from_env().threads() >= 1);
    }

    #[test]
    fn memo_shared_across_cases() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let builds = AtomicUsize::new(0);
        let spec = ScenarioSpec::new("memo", vec![0usize; 1]).with_seeds(64);
        let grouped = Engine::with_threads(4).run_cases(&spec, |c| {
            let v = c.memo.get_or_compute("answer", 0, || {
                builds.fetch_add(1, Ordering::Relaxed);
                42usize
            });
            *v
        });
        assert!(grouped[0].iter().all(|&v| v == 42));
        // At least one build, and every case observed the same value. The
        // build count can transiently exceed 1 under contention, but the
        // stored value is always the first insert.
        assert!(builds.load(Ordering::Relaxed) >= 1);
    }
}
