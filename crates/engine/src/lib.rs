//! # engine — parallel scenario engine
//!
//! Runs experiment sweeps (`ScenarioSpec`) across a pool of worker threads
//! and aggregates per-case results into a deterministic [`ScenarioReport`].
//!
//! ## Model
//!
//! A scenario is a grid of **cases**: every *point* of the sweep's x-axis
//! crossed with every *seed*. Cases are independent by contract — the case
//! closure receives a [`Case`] (point, indices, seed, and a shared
//! [`memo::Memo`]) and must derive everything it needs from those, never
//! from mutable shared state. Under that contract the engine guarantees:
//!
//! * **determinism** — results are collected into slots indexed by case
//!   number and aggregated in slot order, so a run with `N` worker threads
//!   produces *byte-identical* reports to the serial run (pinned by this
//!   crate's unit tests and by `crates/bench/tests/engine_parity.rs`);
//! * **work conservation** — workers pull the next unclaimed case from a
//!   shared atomic cursor, so uneven case costs (e.g. an exact solver next
//!   to a greedy one) still load-balance.
//!
//! ## Memoization
//!
//! Cases frequently share expensive sub-computations: the same seeded
//! deployment solved once per sweep point, the same probe set reused by
//! three placement strategies, the same shortest-path tree queried per
//! traffic. [`memo::Memo`] is a typed, thread-safe cache keyed by
//! `(domain, u64)`; the first computation wins and everyone else gets the
//! shared `Arc`. Builders must be deterministic — the cache trades *time*,
//! never *values*, so memoized and unmemoized runs stay byte-identical.
//!
//! See `DESIGN.md` (workspace root) for the threading model rationale.

#![forbid(unsafe_code)]

pub mod memo;
pub mod report;

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

pub use memo::Memo;
pub use report::ScenarioReport;

/// A sweep description: named x-axis points crossed with seeds.
#[derive(Debug, Clone)]
pub struct ScenarioSpec<P> {
    /// Scenario name (used as the report name).
    pub name: String,
    /// X-axis points, in output order.
    pub points: Vec<P>,
    /// Seeds `0..seeds_per_point` run for every point.
    pub seeds_per_point: u64,
}

impl<P> ScenarioSpec<P> {
    pub fn new(name: impl Into<String>, points: Vec<P>) -> Self {
        ScenarioSpec {
            name: name.into(),
            points,
            seeds_per_point: 1,
        }
    }

    pub fn with_seeds(mut self, seeds: u64) -> Self {
        self.seeds_per_point = seeds.max(1);
        self
    }

    /// Total number of cases in the grid.
    pub fn case_count(&self) -> usize {
        self.points.len() * self.seeds_per_point as usize
    }
}

/// One unit of work handed to the case closure.
pub struct Case<'a, P> {
    /// The sweep point this case belongs to.
    pub point: &'a P,
    /// Index of `point` within `ScenarioSpec::points`.
    pub point_index: usize,
    /// Seed in `0..seeds_per_point`.
    pub seed: u64,
    /// Cache shared by every case of this `run`.
    pub memo: &'a Memo,
}

/// One *chain* of work handed to the chain closure: every point of the
/// sweep for a single seed, to be processed in order by one worker.
///
/// Chains exist for warm-started solvers: successive sweep points are
/// near-identical programs, so a chain closure can carry solver state
/// (an LP basis, a route cache) from point to point. Because a chain is
/// confined to one worker and is keyed by seed alone, the engine's
/// determinism contract is unchanged — results land in the same
/// `[point][seed]` slots as an unchained run, and the memo keying by seed
/// is untouched.
pub struct ChainCase<'a, P> {
    /// All sweep points, in `ScenarioSpec::points` order.
    pub points: &'a [P],
    /// Seed in `0..seeds_per_point`.
    pub seed: u64,
    /// Cache shared by every chain of this `run`.
    pub memo: &'a Memo,
}

/// The scenario engine: a worker-pool executor for [`ScenarioSpec`]s.
#[derive(Debug, Clone)]
pub struct Engine {
    threads: usize,
}

impl Engine {
    /// Single-threaded reference engine (the determinism baseline).
    pub fn serial() -> Self {
        Engine { threads: 1 }
    }

    /// Engine with exactly `n` worker threads (clamped to at least 1).
    pub fn with_threads(n: usize) -> Self {
        Engine { threads: n.max(1) }
    }

    /// Thread count from `POPMON_THREADS`, else the machine's available
    /// parallelism, else 1.
    pub fn from_env() -> Self {
        let threads = std::env::var("POPMON_THREADS")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            });
        Engine::with_threads(threads)
    }

    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs every case of the grid and returns the results grouped by
    /// point (outer vec in point order, inner vec in seed order).
    ///
    /// The case closure must be deterministic in `(point, seed)`; see the
    /// crate docs for the full independence contract.
    pub fn run_cases<P, R, F>(&self, spec: &ScenarioSpec<P>, case: F) -> Vec<Vec<R>>
    where
        P: Sync,
        R: Send,
        F: Fn(Case<'_, P>) -> R + Sync,
    {
        let seeds = spec.seeds_per_point.max(1);
        let total = spec.points.len() * seeds as usize;
        let memo = Memo::new();

        let run_one = |i: usize| {
            let point_index = i / seeds as usize;
            let seed = (i % seeds as usize) as u64;
            case(Case {
                point: &spec.points[point_index],
                point_index,
                seed,
                memo: &memo,
            })
        };

        let mut slots: Vec<Option<R>> = if self.threads <= 1 || total <= 1 {
            (0..total).map(|i| Some(run_one(i))).collect()
        } else {
            let cursor = AtomicUsize::new(0);
            let results = Mutex::new((0..total).map(|_| None).collect::<Vec<Option<R>>>());
            let workers = self.threads.min(total);
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= total {
                            break;
                        }
                        let r = run_one(i);
                        results.lock().expect("result store poisoned")[i] = Some(r);
                    });
                }
            });
            results.into_inner().expect("result store poisoned")
        };

        let mut grouped = Vec::with_capacity(spec.points.len());
        for p in 0..spec.points.len() {
            let row: Vec<R> = slots[p * seeds as usize..(p + 1) * seeds as usize]
                .iter_mut()
                .map(|s| s.take().expect("worker pool left a case unfilled"))
                .collect();
            grouped.push(row);
        }
        grouped
    }

    /// Runs the grid as per-seed *chains*: one work unit per seed, whose
    /// closure visits every point in order and returns one result per
    /// point. Returns results grouped by point (outer vec in point order,
    /// inner vec in seed order) — the same shape as
    /// [`Engine::run_cases`], so aggregation code is interchangeable.
    ///
    /// The chain closure must be deterministic in `seed` and must return
    /// exactly `points.len()` results; carrying solver state across the
    /// points of one chain is the intended use (see [`ChainCase`]).
    ///
    /// # Panics
    ///
    /// Panics when a chain returns the wrong number of results.
    pub fn run_seed_chains<P, R, F>(&self, spec: &ScenarioSpec<P>, chain: F) -> Vec<Vec<R>>
    where
        P: Sync,
        R: Send,
        F: Fn(ChainCase<'_, P>) -> Vec<R> + Sync,
    {
        let seeds = spec.seeds_per_point.max(1) as usize;
        let memo = Memo::new();

        let run_one = |seed: usize| {
            let out = chain(ChainCase {
                points: &spec.points,
                seed: seed as u64,
                memo: &memo,
            });
            assert_eq!(
                out.len(),
                spec.points.len(),
                "chain for seed {seed} returned {} results for {} points",
                out.len(),
                spec.points.len()
            );
            out
        };

        let mut per_seed: Vec<Option<Vec<R>>> = if self.threads <= 1 || seeds <= 1 {
            (0..seeds).map(|s| Some(run_one(s))).collect()
        } else {
            let cursor = AtomicUsize::new(0);
            let results = Mutex::new((0..seeds).map(|_| None).collect::<Vec<Option<Vec<R>>>>());
            let workers = self.threads.min(seeds);
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        let s = cursor.fetch_add(1, Ordering::Relaxed);
                        if s >= seeds {
                            break;
                        }
                        let r = run_one(s);
                        results.lock().expect("result store poisoned")[s] = Some(r);
                    });
                }
            });
            results.into_inner().expect("result store poisoned")
        };

        // Transpose seed-major chains into the point-major grouping.
        let mut chains: Vec<std::vec::IntoIter<R>> = per_seed
            .iter_mut()
            .map(|s| {
                s.take()
                    .expect("worker pool left a chain unfilled")
                    .into_iter()
            })
            .collect();
        let mut grouped = Vec::with_capacity(spec.points.len());
        for _ in 0..spec.points.len() {
            grouped.push(
                chains
                    .iter_mut()
                    .map(|it| it.next().expect("length checked above"))
                    .collect(),
            );
        }
        grouped
    }

    /// [`Engine::run_seed_chains`] + per-point CSV rendering: the chained
    /// counterpart of [`Engine::run_report`], producing byte-identical
    /// reports for any thread count.
    pub fn run_chain_report<P, R, F, G>(
        &self,
        spec: &ScenarioSpec<P>,
        header: impl Into<String>,
        chain: F,
        row: G,
    ) -> ScenarioReport
    where
        P: Sync,
        R: Send,
        F: Fn(ChainCase<'_, P>) -> Vec<R> + Sync,
        G: Fn(&P, &[R]) -> String,
    {
        let grouped = self.run_seed_chains(spec, chain);
        let rows = spec
            .points
            .iter()
            .zip(&grouped)
            .map(|(p, results)| row(p, results))
            .collect();
        ScenarioReport {
            name: spec.name.clone(),
            header: header.into(),
            rows,
        }
    }

    /// Runs the grid and renders one CSV row per point via `row`.
    ///
    /// `row` receives the point and its seed-ordered case results; the
    /// returned [`ScenarioReport`] is byte-identical for any thread count.
    pub fn run_report<P, R, F, G>(
        &self,
        spec: &ScenarioSpec<P>,
        header: impl Into<String>,
        case: F,
        row: G,
    ) -> ScenarioReport
    where
        P: Sync,
        R: Send,
        F: Fn(Case<'_, P>) -> R + Sync,
        G: Fn(&P, &[R]) -> String,
    {
        let grouped = self.run_cases(spec, case);
        let rows = spec
            .points
            .iter()
            .zip(&grouped)
            .map(|(p, results)| row(p, results))
            .collect();
        ScenarioReport {
            name: spec.name.clone(),
            header: header.into(),
            rows,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_shape_and_order() {
        let spec = ScenarioSpec::new("shape", vec![10usize, 20, 30]).with_seeds(4);
        assert_eq!(spec.case_count(), 12);
        let grouped = Engine::serial().run_cases(&spec, |c| (*c.point, c.seed));
        assert_eq!(grouped.len(), 3);
        for (pi, row) in grouped.iter().enumerate() {
            assert_eq!(row.len(), 4);
            for (s, &(p, seed)) in row.iter().enumerate() {
                assert_eq!(p, spec.points[pi]);
                assert_eq!(seed, s as u64);
            }
        }
    }

    #[test]
    fn parallel_matches_serial() {
        let spec = ScenarioSpec::new("parity", (0..17u64).collect()).with_seeds(5);
        let case = |c: Case<'_, u64>| {
            // Arbitrary deterministic arithmetic with some work imbalance.
            let mut acc = c.point.wrapping_mul(0x9E37_79B9).wrapping_add(c.seed);
            for _ in 0..(c.point % 7) * 1000 {
                acc = acc.rotate_left(7) ^ 0xDEAD_BEEF;
            }
            acc
        };
        let serial = Engine::serial().run_cases(&spec, case);
        let parallel = Engine::with_threads(4).run_cases(&spec, case);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn report_is_thread_count_invariant() {
        let spec = ScenarioSpec::new("report", vec![1.0f64, 2.0, 4.0]).with_seeds(3);
        let mk = |e: Engine| {
            e.run_report(
                &spec,
                "x,sum",
                |c| c.point * (c.seed as f64 + 1.0),
                |p, rs| format!("{p},{}", rs.iter().sum::<f64>()),
            )
        };
        let a = mk(Engine::serial());
        let b = mk(Engine::with_threads(3));
        assert_eq!(a.to_csv(), b.to_csv());
        assert_eq!(a.rows.len(), 3);
    }

    #[test]
    fn from_env_is_positive() {
        assert!(Engine::from_env().threads() >= 1);
    }

    #[test]
    fn chained_matches_unchained_and_is_thread_invariant() {
        let spec = ScenarioSpec::new("chain", (0..9u64).collect()).with_seeds(4);
        let case = |p: u64, seed: u64| p.wrapping_mul(31).wrapping_add(seed * 7);
        let unchained = Engine::serial().run_cases(&spec, |c| case(*c.point, c.seed));
        let chain = |c: ChainCase<'_, u64>| -> Vec<u64> {
            // Stateful chain: an accumulator threads through the points,
            // but each emitted result depends only on (point, seed).
            let mut acc = 0u64;
            c.points
                .iter()
                .map(|&p| {
                    acc = acc.wrapping_add(1);
                    case(p, c.seed)
                })
                .collect()
        };
        let serial = Engine::serial().run_seed_chains(&spec, chain);
        let parallel = Engine::with_threads(4).run_seed_chains(&spec, chain);
        assert_eq!(serial, unchained);
        assert_eq!(serial, parallel);
    }

    #[test]
    #[should_panic(expected = "returned 1 results for 3 points")]
    fn chain_length_mismatch_panics() {
        let spec = ScenarioSpec::new("bad", vec![1u32, 2, 3]);
        let _ = Engine::serial().run_seed_chains(&spec, |_c| vec![0u32]);
    }

    #[test]
    fn chain_report_matches_case_report() {
        let spec = ScenarioSpec::new("report", vec![1.0f64, 2.0, 4.0]).with_seeds(3);
        let a = Engine::serial().run_report(
            &spec,
            "x,sum",
            |c| c.point * (c.seed as f64 + 1.0),
            |p, rs| format!("{p},{}", rs.iter().sum::<f64>()),
        );
        let b = Engine::with_threads(3).run_chain_report(
            &spec,
            "x,sum",
            |c: ChainCase<'_, f64>| c.points.iter().map(|p| p * (c.seed as f64 + 1.0)).collect(),
            |p, rs| format!("{p},{}", rs.iter().sum::<f64>()),
        );
        assert_eq!(a.to_csv(), b.to_csv());
    }

    #[test]
    fn memo_shared_across_cases() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let builds = AtomicUsize::new(0);
        let spec = ScenarioSpec::new("memo", vec![0usize; 1]).with_seeds(64);
        let grouped = Engine::with_threads(4).run_cases(&spec, |c| {
            let v = c.memo.get_or_compute("answer", 0, || {
                builds.fetch_add(1, Ordering::Relaxed);
                42usize
            });
            *v
        });
        assert!(grouped[0].iter().all(|&v| v == 42));
        // At least one build, and every case observed the same value. The
        // build count can transiently exceed 1 under contention, but the
        // stored value is always the first insert.
        assert!(builds.load(Ordering::Relaxed) >= 1);
    }
}
